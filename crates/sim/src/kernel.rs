//! Compiled slot kernels ([`SimEngine::Compiled`](crate::SimEngine)).
//!
//! The generic engine re-asks the model the same questions every slot: "does
//! this transmitter hear that granted link?" (a distance + path-loss
//! computation per pair) and "which rate does this victim still decode?" (an
//! allocation plus a power sum per granted link). This module splits the run
//! into a **compile** step — hearing, interference and conflict relations
//! flattened once into word-packed `u64` masks and power tables — and a
//! **step** kernel whose per-slot work is a handful of AND/OR/popcount
//! operations over a reused [`SlotScratch`] arena, with no per-slot
//! allocation.
//!
//! # The bit-identity contract
//!
//! The compiled engine reproduces the generic engine **slot for slot,
//! bit for bit** (property-tested in `tests/proptest_kernels.rs`). Two
//! disciplines make that possible:
//!
//! * **RNG consumption order** is part of the engine contract. Every
//!   `gen_bool`/`gen_range`/`shuffle` call of the generic loop — including
//!   conditional draws like DCF's backoff draw before the busy check, and
//!   the per-slot shuffle of the backlogged contender list (collected in
//!   ascending link order) — happens at the same point of the compiled
//!   loop.
//! * **Float operation order** is replayed exactly: backlog sums walk the
//!   feeder list in insertion order, and the additive capture kernel sums
//!   interference powers in grant order, the same order
//!   [`SinrModel::victim_max_rate`](awb_net::SinrModel) walks its
//!   concurrent set. Thresholds are precompiled with their `1 - 1e-12`
//!   tolerance factors already applied (same multiplication, same bits).

use crate::engine::{is_capture_ok, Simulator};
use crate::report::SimReport;
use crate::Contention;
use awb_net::{AdditiveCapture, LinkId, LinkRateModel};
use awb_phy::Rate;
use awb_sets::bitset;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How the compiled engine answers the per-victim capture question.
enum CaptureKernel {
    /// Pairwise conflict masks — exact when the model declares
    /// `pairwise_admissibility_exact()`. `deny[offsets[li] + k]` (a
    /// link-mask row) holds every link whose chosen rate conflicts with
    /// link `li` transmitting at its `k`-th alone rate (rates descending,
    /// `k` up to the chosen rate's index); the victim survives iff some row
    /// is disjoint from the granted set.
    Pairwise { deny: Vec<u64>, offsets: Vec<usize> },
    /// Additive interference tables (the SINR model): power sum in grant
    /// order, then a walk down the tolerance-scaled decode ladder. `power`
    /// is the model's table **transposed** (victim-major,
    /// `power[victim * n + aggressor]`) so one victim's sum reads a
    /// contiguous row.
    Additive {
        tables: AdditiveCapture,
        power: Vec<f64>,
    },
    /// Fallback for models that are neither: call the model per victim,
    /// over a reused assignment buffer.
    Generic,
}

/// The compiled form of one simulation: every model query the slot loop
/// needs, flattened into dense arrays and masks.
struct CompiledSim {
    num_links: usize,
    num_nodes: usize,
    /// Words per link mask.
    link_words: usize,
    /// Words per node mask.
    node_words: usize,
    /// Transmitter node index per link.
    tx: Vec<usize>,
    /// Flat link-mask rows: bit `g` of row `li` set iff the transmitter of
    /// `li` hears link `g` (the carrier-sense relation).
    hears: Vec<u64>,
    /// Flat node-mask rows: bit `n` of row `g` set iff node `n` hears link
    /// `g` (the busy-accounting relation).
    hearer_nodes: Vec<u64>,
    /// Full-slot payload per link in Mbit (`rate · slot_seconds`; 0 for
    /// dead links).
    need: Vec<f64>,
    /// Whether the link has a live rate.
    live: Vec<bool>,
    /// Backlog of a link with an always-zero queue (no feeders): constant
    /// over the run, `0.0 + 1e-12 >= need`.
    zero_queue_backlog: Vec<bool>,
    capture: CaptureKernel,
}

/// The reused per-slot arena: every buffer the step kernel writes, allocated
/// once per run.
struct SlotScratch {
    backlogged: Vec<bool>,
    /// This slot's backlogged contenders, collected in ascending link
    /// order, then shuffled (OrderedCsma only).
    contenders: Vec<usize>,
    /// Granted links in grant order (the RNG/float-order contract).
    granted: Vec<usize>,
    /// Granted links as a link mask.
    granted_mask: Vec<u64>,
    /// Assignment buffer for the generic capture fallback.
    assignment: Vec<(LinkId, Rate)>,
    /// Nodes busy this slot, as a node mask.
    busy: Vec<u64>,
    /// Last slot's busy mask (carrier-sense state).
    busy_last: Vec<u64>,
}

fn compile<M: LinkRateModel>(sim: &Simulator, model: &M) -> CompiledSim {
    let t = model.topology();
    let num_links = t.num_links();
    let num_nodes = t.num_nodes();
    let link_words = bitset::words_for(num_links);
    let node_words = bitset::words_for(num_nodes);

    let tx: Vec<usize> = t.links().map(|l| l.tx().index()).collect();

    // Busy-accounting relation first: O(nodes × links) model calls, the
    // same precompute the generic engine performs.
    let mut hearer_nodes = vec![0u64; num_links * node_words];
    for l in t.links() {
        let row = &mut hearer_nodes[l.id().index() * node_words..][..node_words];
        for n in t.nodes() {
            if model.node_hears(n.id(), l.id()) {
                bitset::set_bit(row, n.id().index());
            }
        }
    }
    // Carrier sense derives from it: tx of `li` hears link `g` iff that
    // node is among `g`'s hearers — O(links²) bit tests, no model calls.
    let mut hears = vec![0u64; num_links * link_words];
    for li in 0..num_links {
        let row = &mut hears[li * link_words..][..link_words];
        for g in 0..num_links {
            if bitset::test_bit(&hearer_nodes[g * node_words..][..node_words], tx[li]) {
                bitset::set_bit(row, g);
            }
        }
    }

    let need: Vec<f64> = sim
        .link_rate
        .iter()
        .map(|r| r.map_or(0.0, |r| r.as_mbps() * sim.config.slot_seconds))
        .collect();
    let live: Vec<bool> = sim.link_rate.iter().map(Option::is_some).collect();
    let zero_queue_backlog: Vec<bool> = need
        .iter()
        .zip(&live)
        .map(|(&need, &live)| live && 1e-12 >= need)
        .collect();

    let capture = if let Some(tables) = model.additive_capture() {
        let n = tables.num_links;
        let mut power = vec![0.0f64; n * n];
        for t in 0..n {
            for r in 0..n {
                power[r * n + t] = tables.power[t * n + r];
            }
        }
        CaptureKernel::Additive { tables, power }
    } else if model.pairwise_admissibility_exact() {
        let mut deny = Vec::new();
        let mut offsets = vec![0usize];
        for li in 0..num_links {
            let link = LinkId::from_index(li);
            if let Some(chosen) = sim.link_rate[li] {
                let rates = model.alone_rates(link);
                // Rows for every rate down to (and including) the chosen
                // one: the victim survives iff some rate at least as fast
                // as its own clears every granted other.
                for &r in rates.iter() {
                    let row_start = deny.len();
                    deny.resize(row_start + link_words, 0u64);
                    let row = &mut deny[row_start..];
                    for g in 0..num_links {
                        let Some(other_rate) = sim.link_rate[g] else {
                            continue; // dead links are never granted
                        };
                        if g != li
                            && model.conflicts((link, r), (LinkId::from_index(g), other_rate))
                        {
                            bitset::set_bit(row, g);
                        }
                    }
                    if r == chosen {
                        break;
                    }
                }
            }
            offsets.push(deny.len() / link_words);
        }
        CaptureKernel::Pairwise { deny, offsets }
    } else {
        CaptureKernel::Generic
    };

    CompiledSim {
        num_links,
        num_nodes,
        link_words,
        node_words,
        tx,
        hears,
        hearer_nodes,
        need,
        live,
        zero_queue_backlog,
        capture,
    }
}

impl CompiledSim {
    fn hears_row(&self, li: usize) -> &[u64] {
        &self.hears[li * self.link_words..][..self.link_words]
    }

    fn hearer_row(&self, li: usize) -> &[u64] {
        &self.hearer_nodes[li * self.node_words..][..self.node_words]
    }

    /// The capture test for granted link `li` at its chosen `rate` against
    /// the granted set — bit-identical to
    /// [`LinkRateModel::victim_max_rate`] + `rate <= max`.
    // awb-audit: hot
    fn capture_ok<M: LinkRateModel>(
        &self,
        model: &M,
        sim: &Simulator,
        scratch: &mut SlotScratch,
        li: usize,
        rate: Rate,
    ) -> bool {
        match &self.capture {
            CaptureKernel::Pairwise { deny, offsets } => (offsets[li]..offsets[li + 1]).any(|k| {
                bitset::disjoint(
                    &deny[k * self.link_words..][..self.link_words],
                    &scratch.granted_mask,
                )
            }),
            CaptureKernel::Additive { tables, power } => {
                // Interference summed in grant order — the order the
                // model's own victim walk uses (the transposed table holds
                // the exact same f64s, so the sum is bit-identical).
                let row = &power[li * tables.num_links..][..tables.num_links];
                let mut interference = 0.0;
                for &g in &scratch.granted {
                    if g != li {
                        interference += row[g];
                    }
                }
                let pr = tables.signal[li];
                let sinr = pr / (interference + tables.noise);
                tables
                    .steps
                    .iter()
                    .find(|s| pr >= s.min_signal && sinr >= s.min_sinr)
                    .is_some_and(|s| rate <= s.rate)
            }
            CaptureKernel::Generic => {
                if scratch.assignment.len() != scratch.granted.len() {
                    scratch.assignment.clear();
                    scratch.assignment.extend(
                        scratch
                            .granted
                            .iter()
                            .filter_map(|&g| sim.link_rate[g].map(|r| (LinkId::from_index(g), r))),
                    );
                }
                is_capture_ok(model, LinkId::from_index(li), rate, &scratch.assignment)
            }
        }
    }
}

/// One feeder of a link: its queue slot and where a drained packet goes.
struct FeederSlot {
    queue: u32,
    /// Next hop's queue slot, or `u32::MAX` for end-to-end delivery.
    next: u32,
    flow: u32,
}

/// Everything [`step_slot`] reads but never writes: the compiled relations
/// plus the run-constant link/flow arrays built once by [`run_compiled`].
struct SlotPlan<'a> {
    compiled: &'a CompiledSim,
    /// Links whose backlog can change (live, with at least one feeder): the
    /// only rows of `backlogged` that need recomputing each slot.
    fed_links: &'a [usize],
    /// Links that can ever be backlogged: fed links plus the (degenerate)
    /// zero-payload ones. Contention only needs to look at these — the rest
    /// of the topology never contends.
    candidates: &'a [usize],
    /// Unfed candidates (zero payload, no feeders): backlogged every slot.
    always_on: &'a [usize],
    /// Flow `fi`'s hop `hi` lives at queue-arena slot `offsets[fi] + hi`.
    offsets: &'a [usize],
    first_link: &'a [usize],
    arrival_p: &'a [Option<f64>],
    feeder_slots: &'a [FeederSlot],
    feeder_ranges: &'a [(u32, u32)],
    cw_min: u32,
    cw_max: u32,
    is_dcf: bool,
}

/// Everything [`step_slot`] writes: queues, delivery/busy accumulators and
/// the DCF backoff state, allocated once by [`run_compiled`].
struct SlotState {
    queues: Vec<f64>,
    delivered_mbit: Vec<f64>,
    node_busy_slots: Vec<u64>,
    link_delivered_mbit: Vec<f64>,
    link_tx_slots: Vec<u64>,
    link_collision_slots: Vec<u64>,
    cw: Vec<u32>,
    backoff: Vec<Option<u32>>,
}

fn slots_of(range: &(u32, u32)) -> (usize, usize) {
    (range.0 as usize, range.1 as usize)
}

/// Advances the simulation by one slot: arrivals, backlog, contention
/// resolution, capture outcomes and busy accounting. This is the generic
/// engine's slot iteration verbatim — same RNG draw order, same float
/// operation order — over the compiled masks and the reused arenas.
// awb-audit: hot
fn step_slot<M: LinkRateModel>(
    sim: &Simulator,
    model: &M,
    plan: &SlotPlan<'_>,
    state: &mut SlotState,
    scratch: &mut SlotScratch,
    rng: &mut SmallRng,
) {
    let compiled = plan.compiled;

    // Arrivals — the same RNG draws as the generic loop (dead first
    // hops draw nothing).
    for fi in 0..plan.first_link.len() {
        let first = plan.first_link[fi];
        if !compiled.live[first] {
            continue;
        }
        let need = compiled.need[first];
        let q0 = plan.offsets[fi];
        match plan.arrival_p[fi] {
            Some(p) => {
                if rng.gen_bool(p) {
                    state.queues[q0] += need;
                }
            }
            None => {
                // Saturated: first hop always has a slot's worth.
                if state.queues[q0] < need {
                    state.queues[q0] = need;
                }
            }
        }
    }

    // Backlog. DCF needs the per-link backlogged flags (a link that
    // drains its queue must drop its frozen backoff counter), so it
    // keeps the flag array. The memoryless modes only ever consume the
    // *list* of backlogged links in ascending order, so the backlog
    // pass builds that list directly, merging the always-backlogged
    // zero-payload candidates in link order as it goes.
    if plan.is_dcf {
        for &li in plan.fed_links {
            let (s, e) = slots_of(&plan.feeder_ranges[li]);
            let queued: f64 = plan.feeder_slots[s..e]
                .iter()
                .map(|sl| state.queues[sl.queue as usize])
                .sum();
            scratch.backlogged[li] = queued + 1e-12 >= compiled.need[li];
        }
    } else {
        scratch.contenders.clear();
        let mut ai = 0;
        for &li in plan.fed_links {
            while ai < plan.always_on.len() && plan.always_on[ai] < li {
                scratch.contenders.push(plan.always_on[ai]);
                ai += 1;
            }
            let (s, e) = slots_of(&plan.feeder_ranges[li]);
            let queued: f64 = plan.feeder_slots[s..e]
                .iter()
                .map(|sl| state.queues[sl.queue as usize])
                .sum();
            if queued + 1e-12 >= compiled.need[li] {
                scratch.contenders.push(li);
            }
        }
        scratch.contenders.extend_from_slice(&plan.always_on[ai..]);
    }

    // Contention resolution.
    scratch.granted.clear();
    bitset::clear_all(&mut scratch.granted_mask);
    match sim.config.contention {
        Contention::OrderedCsma => {
            scratch.contenders.shuffle(rng);
            for idx in 0..scratch.contenders.len() {
                let li = scratch.contenders[idx];
                let blocked = !bitset::disjoint(compiled.hears_row(li), &scratch.granted_mask);
                if !blocked {
                    scratch.granted.push(li);
                    bitset::set_bit(&mut scratch.granted_mask, li);
                }
            }
        }
        Contention::PPersistent(p) => {
            for idx in 0..scratch.contenders.len() {
                let li = scratch.contenders[idx];
                if !bitset::test_bit(&scratch.busy_last, compiled.tx[li])
                    && rng.gen_bool(p.clamp(0.0, 1.0))
                {
                    scratch.granted.push(li);
                    bitset::set_bit(&mut scratch.granted_mask, li);
                }
            }
        }
        Contention::Dcf { .. } => {
            for &li in plan.candidates {
                if !scratch.backlogged[li] {
                    state.backoff[li] = None; // nothing to send: drop state
                    continue;
                }
                // The draw happens before the busy check, exactly like
                // the generic loop's `get_or_insert_with`.
                let counter =
                    state.backoff[li].get_or_insert_with(|| rng.gen_range(0..state.cw[li]));
                if bitset::test_bit(&scratch.busy_last, compiled.tx[li]) {
                    continue; // counter frozen while the medium is busy
                }
                if *counter == 0 {
                    scratch.granted.push(li);
                    bitset::set_bit(&mut scratch.granted_mask, li);
                } else {
                    *counter -= 1;
                }
            }
        }
    }

    // Outcomes: per-victim capture against the full granted set.
    scratch.assignment.clear();
    for idx in 0..scratch.granted.len() {
        let li = scratch.granted[idx];
        let Some(rate) = sim.link_rate[li] else {
            continue; // unreachable: dead links are never backlogged
        };
        state.link_tx_slots[li] += 1;
        let ok = compiled.capture_ok(model, sim, scratch, li, rate);
        if plan.is_dcf {
            // Post-transmission DCF bookkeeping.
            if ok {
                state.cw[li] = plan.cw_min;
            } else {
                state.cw[li] = (state.cw[li] * 2).min(plan.cw_max);
            }
            state.backoff[li] = None; // re-draw next slot if still backlogged
        }
        if ok {
            let mut remaining = compiled.need[li];
            let (s, e) = slots_of(&plan.feeder_ranges[li]);
            for sl in &plan.feeder_slots[s..e] {
                if remaining <= 0.0 {
                    break;
                }
                let q = state.queues[sl.queue as usize];
                let moved = q.min(remaining);
                if moved > 0.0 {
                    state.queues[sl.queue as usize] -= moved;
                    remaining -= moved;
                    state.link_delivered_mbit[li] += moved;
                    if sl.next != u32::MAX {
                        state.queues[sl.next as usize] += moved;
                    } else {
                        state.delivered_mbit[sl.flow as usize] += moved;
                    }
                }
            }
        } else {
            state.link_collision_slots[li] += 1;
        }
    }

    // Busy accounting (also feeds next slot's carrier-sense state).
    bitset::clear_all(&mut scratch.busy);
    for &g in &scratch.granted {
        bitset::or_into(&mut scratch.busy, compiled.hearer_row(g));
    }
    for n in bitset::iter_bits(&scratch.busy) {
        state.node_busy_slots[n] += 1;
    }
    std::mem::swap(&mut scratch.busy, &mut scratch.busy_last);
}

/// Runs `sim` over `model` with the compiled kernels; the entry point of
/// [`SimEngine::Compiled`](crate::SimEngine).
pub(crate) fn run_compiled<M: LinkRateModel>(sim: &Simulator, model: &M) -> SimReport {
    let compiled = compile(sim, model);
    let num_links = compiled.num_links;
    let num_nodes = compiled.num_nodes;
    let mut rng = SmallRng::seed_from_u64(sim.config.seed);

    let flows = sim.sim_flows();
    let feeders = Simulator::feeders(&flows, num_links);
    // Links whose backlog can change (live, with at least one feeder): the
    // only rows of `backlogged` that need recomputing each slot.
    let fed_links: Vec<usize> = (0..num_links)
        .filter(|&li| compiled.live[li] && !feeders[li].is_empty())
        .collect();
    // Links that can ever be backlogged: fed links plus the (degenerate)
    // zero-payload ones. Contention only needs to look at these — the rest
    // of the topology never contends.
    let candidates: Vec<usize> = (0..num_links)
        .filter(|&li| {
            compiled.live[li] && (!feeders[li].is_empty() || compiled.zero_queue_backlog[li])
        })
        .collect();
    // Unfed candidates (zero payload, no feeders): backlogged every slot.
    let always_on: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&li| feeders[li].is_empty())
        .collect();

    // All per-hop queues flattened into one arena (flow `fi`'s hop `hi`
    // lives at `offsets[fi] + hi`), and each link's feeder list compiled to
    // arena slots — the backlog sum and the drain cascade then walk
    // contiguous memory in exactly the generic engine's visit order.
    let num_flows = flows.len();
    let mut offsets = Vec::with_capacity(num_flows);
    let mut total_hops = 0usize;
    for f in &flows {
        offsets.push(total_hops);
        total_hops += f.hops.len();
    }
    let queues = vec![0.0f64; total_hops];
    let delivered_mbit = vec![0.0f64; num_flows];
    let first_link: Vec<usize> = flows.iter().map(|f| f.hops[0].index()).collect();
    let arrival_p: Vec<Option<f64>> = flows.iter().map(|f| f.arrival_probability).collect();
    let mut feeder_slots: Vec<FeederSlot> = Vec::new();
    let mut feeder_ranges: Vec<(u32, u32)> = Vec::with_capacity(num_links);
    for link_feeders in &feeders {
        let start = feeder_slots.len() as u32;
        for &(fi, hi) in link_feeders {
            let queue = (offsets[fi] + hi) as u32;
            let next = if hi + 1 < flows[fi].hops.len() {
                queue + 1
            } else {
                u32::MAX
            };
            feeder_slots.push(FeederSlot {
                queue,
                next,
                flow: fi as u32,
            });
        }
        feeder_ranges.push((start, feeder_slots.len() as u32));
    }

    let (cw_min, cw_max) = sim.cw_bounds();
    let is_dcf = matches!(sim.config.contention, Contention::Dcf { .. });

    let plan = SlotPlan {
        compiled: &compiled,
        fed_links: &fed_links,
        candidates: &candidates,
        always_on: &always_on,
        offsets: &offsets,
        first_link: &first_link,
        arrival_p: &arrival_p,
        feeder_slots: &feeder_slots,
        feeder_ranges: &feeder_ranges,
        cw_min,
        cw_max,
        is_dcf,
    };
    let mut state = SlotState {
        queues,
        delivered_mbit,
        node_busy_slots: vec![0u64; num_nodes],
        link_delivered_mbit: vec![0.0f64; num_links],
        link_tx_slots: vec![0u64; num_links],
        link_collision_slots: vec![0u64; num_links],
        cw: vec![cw_min; num_links],
        backoff: vec![None; num_links],
    };
    let mut scratch = SlotScratch {
        backlogged: compiled.zero_queue_backlog.clone(),
        contenders: Vec::with_capacity(candidates.len()),
        granted: Vec::with_capacity(num_links),
        granted_mask: vec![0u64; compiled.link_words],
        assignment: Vec::with_capacity(num_links),
        busy: vec![0u64; compiled.node_words],
        busy_last: vec![0u64; compiled.node_words],
    };

    for _ in 0..sim.config.slots {
        step_slot(sim, model, &plan, &mut state, &mut scratch, &mut rng);
    }

    let total = sim.config.slots as f64;
    let duration = total * sim.config.slot_seconds;
    SimReport {
        node_idle_ratio: state
            .node_busy_slots
            .iter()
            .map(|&b| 1.0 - b as f64 / total)
            .collect(),
        link_throughput_mbps: state
            .link_delivered_mbit
            .iter()
            .map(|&m| m / duration)
            .collect(),
        flow_throughput_mbps: state.delivered_mbit.iter().map(|&m| m / duration).collect(),
        link_tx_slots: state.link_tx_slots,
        link_collision_slots: state.link_collision_slots,
        slots: sim.config.slots,
        slot_seconds: sim.config.slot_seconds,
    }
}
