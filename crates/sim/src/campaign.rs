//! Deterministic parallel fan-out for simulation campaigns.
//!
//! A scenario matrix (density × rate mix × contention × traffic × seed) is a
//! list of independent jobs, each of which runs its own [`Simulator`] with
//! its own seeded RNG. Because every job is self-contained, parallelism
//! cannot change any job's result — only the *order of completion*. This
//! module pins the order of *collection* too: results come back indexed by
//! job, so the merged output is bit-for-bit identical for any thread count
//! (property-tested in `tests/proptest_kernels.rs`).
//!
//! [`Simulator`]: crate::Simulator

use std::num::NonZeroUsize;
use std::thread;

/// Resolves a `--sim-threads`-style knob: `0` means "ask the OS", anything
/// else is taken literally (capped at the job count by [`fan_out`]).
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Runs `jobs(0..num_jobs)` across `threads` workers and returns the results
/// in job order.
///
/// Work is assigned by **striping**: worker `w` runs jobs `w`, `w + T`,
/// `w + 2T`, … — a static schedule, so which thread runs which job is a
/// pure function of `(num_jobs, threads)` and never of timing. `threads = 0`
/// resolves to the machine's available parallelism; `threads = 1` runs the
/// plain sequential loop (no worker threads at all). Either way the returned
/// vector is identical: element `i` is `job(i)`.
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins all workers first).
pub fn fan_out<T, F>(num_jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads).min(num_jobs.max(1));
    if threads <= 1 {
        return (0..num_jobs).map(job).collect();
    }
    let mut slots: Vec<Option<T>> = (0..num_jobs).map(|_| None).collect();
    thread::scope(|scope| {
        let job = &job;
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            handles.push(scope.spawn(move || {
                (w..num_jobs)
                    .step_by(threads)
                    .map(|i| (i, job(i)))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            // awb-audit: allow(no-panic-in-lib) — a worker panic is a job-closure bug; propagating it is the contract
            for (i, r) in h.join().expect("campaign worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        // awb-audit: allow(no-panic-in-lib) — worker w owns indices w, w+T, 2T, … — together they cover 0..num_jobs
        .map(|s| s.expect("striping covers every job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_preserves_job_order() {
        let seq = fan_out(17, 1, |i| i * i);
        for threads in [0, 2, 3, 8, 64] {
            assert_eq!(fan_out(17, threads, |i| i * i), seq, "threads {threads}");
        }
    }

    #[test]
    fn empty_and_single_job_matrices() {
        assert_eq!(fan_out(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(1, 4, |i| i + 41), vec![41]);
    }

    #[test]
    fn zero_threads_resolves_to_machine_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
