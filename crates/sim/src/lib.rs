//! A slotted CSMA/CA wireless MAC simulator.
//!
//! The paper's distributed estimators consume **channel idleness ratios**
//! measured by carrier sensing (§4). The `awb-estimate` crate derives those
//! ratios analytically from a schedule; this crate measures them
//! *behaviourally*: a contention MAC in the spirit of IEEE 802.11 DCF runs
//! over any [`awb_net::LinkRateModel`], forwarding multihop traffic and
//! recording per-node busy time, per-link throughput and collisions.
//!
//! # Model
//!
//! Time is divided into equal slots. In each slot:
//!
//! 1. Every backlogged link contends. Contenders are visited in random
//!    order; a contender transmits iff its transmitter does not hear any
//!    link already granted this slot (physical carrier sensing).
//! 2. Each transmitting link uses a rate given by its [`RatePolicy`]; the
//!    transmission succeeds iff the couple set of all concurrent
//!    transmissions is admissible for it (SINR capture), else the slot is a
//!    **collision** for that link and delivers nothing.
//! 3. Each node that participates in or hears any granted link is busy this
//!    slot; per-node idleness is the fraction of non-busy slots.
//!
//! Flows inject demand at their first hop; delivered traffic cascades to the
//! next hop's queue, so end-to-end throughput is measured at the last hop.
//!
//! # Example
//!
//! Scenario I behaviourally: two independent background links at load λ and
//! an idle observer. Their transmissions overlap only by chance, so the
//! observer's measured idle time underestimates what an optimal scheduler
//! could align:
//!
//! ```
//! use awb_sim::{SimConfig, Simulator};
//! use awb_workloads::ScenarioOne;
//!
//! let s1 = ScenarioOne::new();
//! let lambda = 0.4;
//! let mut sim = Simulator::new(s1.model(), SimConfig { slots: 20_000, ..SimConfig::default() });
//! let t = s1.model();
//! for flow in s1.background(lambda) {
//!     sim.add_flow(flow.path().clone(), Some(flow.demand_mbps()));
//! }
//! let report = sim.run(t);
//! let l3_tx = t.topology().link(s1.links()[2]).unwrap().tx();
//! let measured_idle = report.node_idle_ratio[l3_tx.index()];
//! // Optimal overlap would leave 1 − λ = 0.6 idle; random phases leave less.
//! assert!(measured_idle < 0.6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
mod engine;
mod kernel;
mod report;

pub use engine::{Contention, RatePolicy, SimConfig, SimEngine, Simulator};
pub use report::SimReport;
