//! Measurement output of a simulation run.

/// Statistics gathered by [`Simulator::run`](crate::Simulator::run).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct SimReport {
    /// Fraction of slots each node sensed the channel idle, indexed by node
    /// id — the `λ_idle` of the paper's §4, as measured.
    pub node_idle_ratio: Vec<f64>,
    /// Delivered throughput per link in Mbps, indexed by link id.
    pub link_throughput_mbps: Vec<f64>,
    /// End-to-end delivered throughput per flow in Mbps, in
    /// [`Simulator::add_flow`](crate::Simulator::add_flow) order.
    pub flow_throughput_mbps: Vec<f64>,
    /// Slots in which each link transmitted (successfully or not).
    pub link_tx_slots: Vec<u64>,
    /// Slots in which each link's transmission failed SINR capture.
    pub link_collision_slots: Vec<u64>,
    /// Total simulated slots.
    pub slots: u64,
    /// Slot duration in seconds.
    pub slot_seconds: f64,
}

impl SimReport {
    /// Collision ratio of a link: collided slots over transmitted slots
    /// (0.0 for links that never transmitted).
    pub fn collision_ratio(&self, link: awb_net::LinkId) -> f64 {
        let tx = self.link_tx_slots[link.index()];
        if tx == 0 {
            0.0
        } else {
            self.link_collision_slots[link.index()] as f64 / tx as f64
        }
    }

    /// Simulated wall-clock duration in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.slots as f64 * self.slot_seconds
    }
}
