//! The rule registry and the per-rule matchers.
//!
//! Every rule runs over the *masked* source (comments and literals blanked,
//! see [`crate::lexer`]), outside `#[cfg(test)]` ranges, and honors per-site
//! waivers of the form
//!
//! ```text
//! // awb-audit: allow(no-float-eq) — exact-zero fast path, not a tolerance test
//! ```
//!
//! An own-line waiver covers the next code line; a trailing waiver covers its
//! own line. A waiver **must** carry a justification after the closing
//! parenthesis — a bare `allow(...)` is itself reported (`invalid-waiver`),
//! as is a waiver naming an unknown rule.

use std::collections::BTreeSet;

/// A lint rule identity. `Rule::all()` is the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no `unwrap()`/`expect()`/`panic!`-family calls in library code of
    /// the solver crates.
    NoPanicInLib,
    /// R2: no `==`/`!=` against float literals — tolerance comparisons only.
    NoFloatEq,
    /// R3: no `HashMap`/`HashSet` in crates whose iteration order can reach
    /// serialized output, set pools, or LP column order.
    Determinism,
    /// R4: every crate root carries `#![forbid(unsafe_code)]` (and, for
    /// library roots, a `missing_docs` lint).
    LintHeader,
    /// A malformed or unjustified waiver comment.
    InvalidWaiver,
    /// R5: every `unsafe` site needs an adjacent `// SAFETY:` comment, and
    /// `unsafe` is confined to an allowlisted set of files.
    UnsafeConfinement,
    /// R6: lock-order pairs (advisory), pair-digraph cycles, and blocking
    /// calls made while a lock is held (deny).
    LockOrder,
    /// R7: no allocation-shaped calls reachable from a `// awb-audit: hot`
    /// function.
    HotPathAlloc,
    /// R8: no blocking-shaped calls reachable from a
    /// `// awb-audit: event-loop` function.
    ReactorBlocking,
    /// Advisory (opt-in via `--strict-indexing`): `[idx]` indexing in the
    /// panic-free crates. Reported but never fails `--deny`.
    StrictIndexing,
}

impl Rule {
    /// Every deny-able rule, in report order.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::NoPanicInLib,
            Rule::NoFloatEq,
            Rule::Determinism,
            Rule::LintHeader,
            Rule::InvalidWaiver,
            Rule::UnsafeConfinement,
            Rule::LockOrder,
            Rule::HotPathAlloc,
            Rule::ReactorBlocking,
        ]
    }

    /// The kebab-case name used in waivers, JSON output and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanicInLib => "no-panic-in-lib",
            Rule::NoFloatEq => "no-float-eq",
            Rule::Determinism => "determinism",
            Rule::LintHeader => "lint-header",
            Rule::InvalidWaiver => "invalid-waiver",
            Rule::UnsafeConfinement => "unsafe-confinement",
            Rule::LockOrder => "lock-order",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::ReactorBlocking => "reactor-blocking",
            Rule::StrictIndexing => "strict-indexing",
        }
    }

    /// Parses a waiver rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-panic-in-lib" => Some(Rule::NoPanicInLib),
            "no-float-eq" => Some(Rule::NoFloatEq),
            "determinism" => Some(Rule::Determinism),
            "lint-header" => Some(Rule::LintHeader),
            "invalid-waiver" => Some(Rule::InvalidWaiver),
            "unsafe-confinement" => Some(Rule::UnsafeConfinement),
            "lock-order" => Some(Rule::LockOrder),
            "hot-path-alloc" => Some(Rule::HotPathAlloc),
            "reactor-blocking" => Some(Rule::ReactorBlocking),
            "strict-indexing" => Some(Rule::StrictIndexing),
            _ => None,
        }
    }

    /// Whether this rule audits the given crate (by directory name, e.g.
    /// `"lp"`; the workspace facade crate is `"awb"`).
    pub fn applies_to(self, crate_name: &str) -> bool {
        match self {
            Rule::NoPanicInLib | Rule::NoFloatEq | Rule::StrictIndexing => {
                matches!(
                    crate_name,
                    "lp" | "core"
                        | "sets"
                        | "service"
                        | "routing"
                        | "estimate"
                        | "sim"
                        | "reactor"
                        | "workloads"
                )
            }
            Rule::Determinism => matches!(
                crate_name,
                "core"
                    | "sets"
                    | "service"
                    | "routing"
                    | "estimate"
                    | "sim"
                    | "reactor"
                    | "workloads"
            ),
            Rule::LintHeader
            | Rule::InvalidWaiver
            | Rule::UnsafeConfinement
            | Rule::LockOrder
            | Rule::HotPathAlloc
            | Rule::ReactorBlocking => true,
        }
    }

    /// One-line description shown by `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::NoPanicInLib => {
                "library code of lp/core/sets/service/routing/estimate/sim/reactor/workloads \
                 must not unwrap(), expect() or panic!"
            }
            Rule::NoFloatEq => "floats must be compared through tolerances, never == / !=",
            Rule::Determinism => {
                "core/sets/service/routing/estimate/sim/reactor/workloads must not use \
                 HashMap/HashSet (iteration order leaks)"
            }
            Rule::LintHeader => {
                "crate roots must carry #![forbid(unsafe_code)] (+ missing_docs on lib roots)"
            }
            Rule::InvalidWaiver => "awb-audit waivers must name known rules and justify themselves",
            Rule::UnsafeConfinement => {
                "unsafe sites need an adjacent // SAFETY: comment and may only \
                 appear in allowlisted files (reactor/src/sys.rs)"
            }
            Rule::LockOrder => {
                "lock-acquisition pairs are reported; pair cycles and blocking \
                 calls under a held lock are denied"
            }
            Rule::HotPathAlloc => {
                "functions reachable from an `// awb-audit: hot` root must not \
                 allocate (Vec::new/vec!/Box::new/format!/clone/collect/…)"
            }
            Rule::ReactorBlocking => {
                "functions reachable from an `// awb-audit: event-loop` root must \
                 not block (thread::sleep, argless recv()/join(), blocking reads, \
                 condvar waits)"
            }
            Rule::StrictIndexing => {
                "advisory: [idx] indexing in panic-free crates (opt-in, never denied)"
            }
        }
    }
}

/// One rule violation at one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub col: usize,
    /// What was matched, for the human report.
    pub message: String,
}

/// How a file's path classifies it for the `lint-header` rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/lib.rs` — needs `forbid(unsafe_code)` and a `missing_docs` lint.
    LibRoot,
    /// `src/main.rs` or `src/bin/*.rs` — needs `forbid(unsafe_code)`.
    BinRoot,
    /// Any other module file — no header requirement.
    Module,
}

/// Classifies `rel_path` (path under the crate directory, e.g.
/// `src/bin/foo.rs`).
pub fn classify(rel_path: &str) -> FileKind {
    let normalized = rel_path.replace('\\', "/");
    if normalized.ends_with("src/lib.rs") || normalized == "lib.rs" {
        FileKind::LibRoot
    } else if normalized.ends_with("src/main.rs")
        || normalized == "main.rs"
        || normalized.contains("src/bin/")
    {
        FileKind::BinRoot
    } else {
        FileKind::Module
    }
}

/// A parsed waiver: the rules it allows on its target line.
#[derive(Debug, Clone)]
pub(crate) struct Waiver {
    pub target_line: usize,
    pub rules: BTreeSet<Rule>,
}

pub(crate) const WAIVER_MARK: &str = "awb-audit:";

/// Files in which `unsafe` is permitted (crate directory name, crate-relative
/// path suffix). Everything else gets an `unsafe-confinement` finding for any
/// `unsafe` site, SAFETY-commented or not.
pub(crate) const UNSAFE_ALLOWLIST: &[(&str, &str)] = &[("reactor", "src/sys.rs")];

/// Whether `rel_path` of `crate_name` may contain `unsafe` code.
pub(crate) fn unsafe_allowlisted(crate_name: &str, rel_path: &str) -> bool {
    let normalized = rel_path.replace('\\', "/");
    UNSAFE_ALLOWLIST.iter().any(|(c, p)| {
        *c == crate_name && (normalized == *p || normalized.ends_with(&format!("/{p}")))
    })
}

/// Extracts waivers (and invalid-waiver findings) from the comments.
pub(crate) fn parse_waivers(
    file: &str,
    masked: &crate::lexer::Masked,
    findings: &mut Vec<Finding>,
) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    // Line numbers (1-based) whose masked content is blank — own-line waiver
    // comments skip over these to find their target code line.
    let blank: Vec<bool> = masked.text.lines().map(|l| l.trim().is_empty()).collect();
    for comment in &masked.comments {
        // The mark must open the comment: doc prose *mentioning* a waiver
        // (backticked examples, rule descriptions) never matches.
        let Some(rest) = comment.text.trim_start().strip_prefix(WAIVER_MARK) else {
            continue;
        };
        let rest = rest.trim_start();
        // `// awb-audit: hot` / `event-loop` are annotations consumed by the
        // item parser, not waivers.
        let first_word = rest
            .split(|c: char| c.is_whitespace())
            .next()
            .unwrap_or_default();
        if matches!(first_word, "hot" | "event-loop") {
            continue;
        }
        let Some(open) = rest.strip_prefix("allow(") else {
            findings.push(Finding {
                rule: Rule::InvalidWaiver,
                file: file.to_string(),
                line: comment.line,
                col: 1,
                message: "awb-audit comment without a recognizable allow(...) clause".to_string(),
            });
            continue;
        };
        let Some(close) = open.find(')') else {
            findings.push(Finding {
                rule: Rule::InvalidWaiver,
                file: file.to_string(),
                line: comment.line,
                col: 1,
                message: "unterminated allow(: missing closing parenthesis".to_string(),
            });
            continue;
        };
        let mut rules = BTreeSet::new();
        let mut bad_name = None;
        for name in open[..close].split(',') {
            let name = name.trim();
            match Rule::from_name(name) {
                Some(rule) => {
                    rules.insert(rule);
                }
                None => bad_name = Some(name.to_string()),
            }
        }
        if let Some(name) = bad_name {
            findings.push(Finding {
                rule: Rule::InvalidWaiver,
                file: file.to_string(),
                line: comment.line,
                col: 1,
                message: format!("waiver names unknown rule `{name}`"),
            });
            continue;
        }
        let justification = open[close + 1..]
            .trim_start_matches([' ', '\t', ':', '-', '—', '–'])
            .trim();
        if justification.is_empty() {
            findings.push(Finding {
                rule: Rule::InvalidWaiver,
                file: file.to_string(),
                line: comment.line,
                col: 1,
                message: "waiver has no justification — say why the site is safe".to_string(),
            });
            continue;
        }
        let target_line = if comment.own_line {
            // Skip forward over blank / comment-only lines to the code line.
            let mut l = comment.line + 1;
            while blank.get(l - 1).copied().unwrap_or(false) {
                l += 1;
            }
            l
        } else {
            comment.line
        };
        waivers.push(Waiver { target_line, rules });
    }
    waivers
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds R1 matches (panic-family calls) on one masked code line.
pub(crate) fn scan_panics(line: &str) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    let chars: Vec<char> = line.chars().collect();
    for method in [".unwrap()", ".unwrap_err()", ".expect(", ".expect_err("] {
        let name = method.trim_matches(|c| c == '.' || c == '(' || c == ')');
        let mut from = 0usize;
        while let Some(pos) = find_from(&chars, method, from) {
            hits.push((pos + 1, format!("`{name}()` call")));
            from = pos + method.len();
        }
    }
    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        let mut from = 0usize;
        while let Some(pos) = find_from(&chars, mac, from) {
            let bounded = pos == 0 || !is_ident_char(chars[pos - 1]);
            if bounded {
                hits.push((pos + 1, format!("`{mac}` macro")));
            }
            from = pos + mac.len();
        }
    }
    hits.sort();
    hits
}

/// Finds R2 matches: `==` / `!=` where either operand is a float literal.
pub(crate) fn scan_float_eq(line: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = line.chars().collect();
    let mut hits = Vec::new();
    let mut i = 0usize;
    while i + 1 < chars.len() {
        let op = match (chars[i], chars[i + 1], chars.get(i + 2)) {
            ('=', '=', next) if next != Some(&'=') => {
                // Exclude <=, >=, ==-continuations, != handled below, and =>.
                let prev = if i == 0 { ' ' } else { chars[i - 1] };
                if matches!(
                    prev,
                    '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
                ) {
                    None
                } else {
                    Some("==")
                }
            }
            ('!', '=', next) if next != Some(&'=') => Some("!="),
            _ => None,
        };
        if let Some(op) = op {
            let lhs_float = prev_token_is_float(&chars, i);
            let rhs_float = next_token_is_float(&chars, i + 2);
            if lhs_float || rhs_float {
                hits.push((i + 1, format!("float compared with `{op}`")));
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    hits
}

/// Finds R3 matches: `HashMap` / `HashSet` identifiers.
pub(crate) fn scan_hash_collections(line: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = line.chars().collect();
    let mut hits = Vec::new();
    for ident in ["HashMap", "HashSet"] {
        let mut from = 0usize;
        while let Some(pos) = find_from(&chars, ident, from) {
            let left_ok = pos == 0 || !is_ident_char(chars[pos - 1]);
            let right = pos + ident.len();
            let right_ok = right >= chars.len() || !is_ident_char(chars[right]);
            if left_ok && right_ok {
                hits.push((pos + 1, format!("`{ident}` (unordered iteration)")));
            }
            from = pos + ident.len();
        }
    }
    hits.sort();
    hits
}

/// Finds advisory indexing matches: an index expression `expr[...]` where
/// `expr` ends in an identifier, `)` or `]`. Attribute (`#[...]`), macro
/// (`vec![...]`) and type (`: [T; N]`) brackets never match.
pub(crate) fn scan_indexing(line: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = line.chars().collect();
    let mut hits = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let prev = chars[i - 1];
        if is_ident_char(prev) || prev == ')' || prev == ']' {
            // `&x[..]` full-range slicing is not an indexing panic risk when
            // written as `[..]`; still reported — the reviewer decides.
            hits.push((i + 1, "`[...]` index expression".to_string()));
        }
    }
    hits
}

fn find_from(chars: &[char], needle: &str, from: usize) -> Option<usize> {
    let needle: Vec<char> = needle.chars().collect();
    if needle.is_empty() || chars.len() < needle.len() {
        return None;
    }
    (from..=chars.len() - needle.len())
        .find(|&start| chars[start..start + needle.len()] == needle[..])
}

/// Scans backwards from the operator at `op_start` for the previous token and
/// tests it for float-literal-ness. Tuple-field accesses (`x.0`) are excluded
/// by inspecting the character before the token.
fn prev_token_is_float(chars: &[char], op_start: usize) -> bool {
    let mut end = op_start;
    while end > 0 && chars[end - 1] == ' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (is_ident_char(chars[start - 1]) || chars[start - 1] == '.') {
        start -= 1;
    }
    if start == end {
        return false;
    }
    let token: String = chars[start..end].iter().collect();
    // `w[0].0 != …`: the token reads `.0`-ish but follows an expression.
    if token.starts_with('.')
        && start > 0
        && (is_ident_char(chars[start - 1]) || chars[start - 1] == ')' || chars[start - 1] == ']')
    {
        return false;
    }
    is_float_literal(&token)
}

fn next_token_is_float(chars: &[char], mut i: usize) -> bool {
    while i < chars.len() && chars[i] == ' ' {
        i += 1;
    }
    if chars.get(i) == Some(&'-') {
        i += 1;
        while i < chars.len() && chars[i] == ' ' {
            i += 1;
        }
    }
    let start = i;
    while i < chars.len() && (is_ident_char(chars[i]) || chars[i] == '.') {
        i += 1;
    }
    if start == i {
        return false;
    }
    let token: String = chars[start..i].iter().collect();
    is_float_literal(&token)
}

/// Whether `token` is a Rust float literal: digits with a decimal point, an
/// exponent, or an `f32`/`f64` suffix. Plain integers are *not* floats.
fn is_float_literal(token: &str) -> bool {
    let stripped = token.trim_end_matches("f64").trim_end_matches("f32");
    let had_suffix = stripped.len() != token.len();
    if stripped.is_empty() || !stripped.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let mut saw_dot = false;
    let mut saw_exp = false;
    for c in stripped.chars() {
        match c {
            '0'..='9' | '_' => {}
            '.' if !saw_dot && !saw_exp => saw_dot = true,
            'e' | 'E' if !saw_exp => saw_exp = true,
            _ => return false,
        }
    }
    saw_dot || saw_exp || had_suffix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_family_is_caught() {
        let hits = scan_panics("let x = v.last().unwrap(); panic!(\"no\");");
        assert_eq!(hits.len(), 2);
        assert!(scan_panics("x.unwrap_or(0.0)").is_empty());
        assert!(scan_panics("x.unwrap_or_else(|| 1)").is_empty());
        assert!(scan_panics("x.expected_value()").is_empty());
        assert!(scan_panics("debug_assert!(ok)").is_empty());
        assert_eq!(scan_panics("unreachable!()").len(), 1);
        assert!(scan_panics("not_unreachable!()").is_empty());
    }

    #[test]
    fn float_eq_is_caught_but_int_and_field_access_are_not() {
        assert_eq!(scan_float_eq("if factor == 0.0 {").len(), 1);
        assert_eq!(scan_float_eq("if *mu != 0.0 {").len(), 1);
        assert_eq!(scan_float_eq("if 1.5e3 == x {").len(), 1);
        assert!(scan_float_eq("if n == 0 {").is_empty());
        assert!(scan_float_eq("if w[0].0 != w[1].0 {").is_empty());
        assert!(scan_float_eq("if a <= 0.0 {").is_empty());
        assert!(scan_float_eq("if a >= 0.0 {").is_empty());
        assert!(scan_float_eq("let f = |x| x == y;").is_empty());
        assert_eq!(scan_float_eq("x == 2.0f64").len(), 1);
        assert!(scan_float_eq("match x { _ => 0.0 }").is_empty());
    }

    #[test]
    fn hash_collections_are_caught() {
        assert_eq!(
            scan_hash_collections("use std::collections::HashMap;").len(),
            1
        );
        assert_eq!(
            scan_hash_collections("let m: HashMap<u64, HashSet<u32>> = x;").len(),
            2
        );
        assert!(scan_hash_collections("let m = BTreeMap::new();").is_empty());
        assert!(scan_hash_collections("struct MyHashMapLike;").is_empty());
    }

    #[test]
    fn indexing_advisory_matches_only_expressions() {
        assert_eq!(scan_indexing("let v = data[i];").len(), 1);
        assert_eq!(scan_indexing("m[r * stride + c]").len(), 1);
        assert!(scan_indexing("#[derive(Debug)]").is_empty());
        assert!(scan_indexing("let v = vec![1, 2];").is_empty());
        assert!(scan_indexing("let a: [f64; 3] = x;").is_empty());
        assert_eq!(scan_indexing("f(x)[0]").len(), 1);
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("src/lib.rs"), FileKind::LibRoot);
        assert_eq!(classify("src/main.rs"), FileKind::BinRoot);
        assert_eq!(classify("src/bin/enum_bench.rs"), FileKind::BinRoot);
        assert_eq!(classify("src/simplex.rs"), FileKind::Module);
    }

    #[test]
    fn rule_names_round_trip() {
        for &rule in Rule::all() {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("nope"), None);
    }
}
