//! The per-crate call graph and the interprocedural rules built on it.
//!
//! Nodes are the `fn` items extracted by [`crate::parse`]; edges come from
//! call-site resolution by name:
//!
//! * **free calls** resolve to free functions of the *same crate* first,
//!   then workspace-wide when the name is unique;
//! * **path calls** resolve `Type::name` against impl methods (same crate,
//!   then unique workspace-wide), `Self::name` against the caller's impl
//!   block, and `awb_xxx::name` / `module::name` against free functions of
//!   the named (or current) crate;
//! * **method calls** (`x.name(…)`) resolve to *every* same-crate impl
//!   method with that bare name — an over-approximation (no trait dispatch
//!   or receiver types), except that ubiquitous std-container names
//!   ([`crate::parse::COMMON_METHODS`]) produce no edge at all — an
//!   under-approximation. Both choices are documented in DESIGN.md §5k.
//!
//! On top of the graph:
//!
//! * **R6 `lock-order`** — every ordered pair *(held, acquired)* of lock
//!   classes is reported as an advisory; a cycle in the pair digraph is a
//!   deny finding, as is any blocking call made while a lock is held (the
//!   condvar pattern — waiting on the guard's own lock — is exempt), and,
//!   on the event-loop path, any call made under a lock into a function
//!   that may transitively block.
//! * **R7 `hot-path-alloc`** — allocation-shaped sites in any function
//!   reachable from a `// awb-audit: hot` root.
//! * **R8 `reactor-blocking`** — blocking-shaped sites in any function
//!   reachable from a `// awb-audit: event-loop` root.
//!
//! Lock classes are crate-qualified last-segment names (`service::cache`);
//! two different mutexes stored in fields of the same name share a class —
//! an over-approximation that can only add pairs, never hide them.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{CallKind, FnItem, COMMON_METHODS, LOCK_INTRINSICS, TAG_EVENT_LOOP, TAG_HOT};
use crate::rules::{Finding, Rule};

/// One graph node: a parsed `fn` item plus where it lives.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub crate_name: String,
    pub file: String,
    pub item: FnItem,
}

/// Interprocedural findings and advisories for one workspace.
#[derive(Debug, Default)]
pub(crate) struct GraphReport {
    pub findings: Vec<Finding>,
    pub advisories: Vec<Finding>,
}

struct Graph {
    nodes: Vec<Node>,
    /// Resolved call edges, parallel to `nodes[i].item.calls`.
    edges: Vec<Vec<usize>>,
    /// Transitive lock classes acquired by each node (crate-qualified).
    acq_all: Vec<BTreeSet<String>>,
    /// Whether each node contains (or transitively calls) a blocking site.
    blocks_any: Vec<bool>,
}

/// Runs R6/R7/R8 over the parsed items of the whole file set.
pub(crate) fn analyze_graph(nodes: Vec<Node>) -> GraphReport {
    let graph = Graph::build(nodes);
    let mut report = GraphReport::default();
    graph.rule_hot_path(&mut report);
    graph.rule_event_loop(&mut report);
    graph.rule_lock_order(&mut report);
    report
}

impl Graph {
    fn build(nodes: Vec<Node>) -> Graph {
        // Name indexes. Free functions have `qualified == name`.
        let mut free_by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut methods_by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut qual_by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_global: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut qual_global: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, node) in nodes.iter().enumerate() {
            if LOCK_INTRINSICS.contains(&node.item.name.as_str()) {
                // The lock helpers are analysis intrinsics: call sites to
                // them already became acquisitions, and their own `m.lock()`
                // bodies must not introduce a phantom `m` class.
                continue;
            }
            let key = (node.crate_name.clone(), node.item.name.clone());
            if node.item.qualified == node.item.name {
                free_by_crate.entry(key).or_default().push(id);
                free_global
                    .entry(node.item.name.clone())
                    .or_default()
                    .push(id);
            } else {
                methods_by_crate.entry(key).or_default().push(id);
            }
            qual_by_crate
                .entry((node.crate_name.clone(), node.item.qualified.clone()))
                .or_default()
                .push(id);
            qual_global
                .entry(node.item.qualified.clone())
                .or_default()
                .push(id);
        }

        let resolve = |caller: &Node, kind: &CallKind, name: &str| -> Vec<usize> {
            if LOCK_INTRINSICS.contains(&name) || name == "drop" {
                return Vec::new();
            }
            let crate_name = caller.crate_name.as_str();
            match kind {
                CallKind::Free => {
                    if let Some(ids) =
                        free_by_crate.get(&(crate_name.to_string(), name.to_string()))
                    {
                        return ids.clone();
                    }
                    match free_global.get(name) {
                        Some(ids) if ids.len() == 1 => ids.clone(),
                        _ => Vec::new(),
                    }
                }
                CallKind::Method => {
                    if COMMON_METHODS.contains(&name) {
                        return Vec::new();
                    }
                    methods_by_crate
                        .get(&(crate_name.to_string(), name.to_string()))
                        .cloned()
                        .unwrap_or_default()
                }
                CallKind::Path(path) => {
                    let segs: Vec<&str> = path.split("::").collect();
                    let qual = segs.get(segs.len().wrapping_sub(2)).copied().unwrap_or("");
                    if qual == "Self" {
                        let ty = caller.item.qualified.split("::").next().unwrap_or("");
                        let q = format!("{ty}::{name}");
                        return qual_by_crate
                            .get(&(crate_name.to_string(), q))
                            .cloned()
                            .unwrap_or_default();
                    }
                    if qual.starts_with(char::is_uppercase) {
                        let q = format!("{qual}::{name}");
                        if let Some(ids) = qual_by_crate.get(&(crate_name.to_string(), q.clone())) {
                            return ids.clone();
                        }
                        return match qual_global.get(&q) {
                            Some(ids) if ids.len() == 1 => ids.clone(),
                            _ => Vec::new(),
                        };
                    }
                    // Module-qualified free call. `awb_xxx::…` names a
                    // workspace crate; anything else is a same-crate module
                    // path (modules are flattened per crate).
                    let target = if qual == "awb" || qual.starts_with("awb_") {
                        qual.trim_start_matches("awb_").to_string()
                    } else {
                        crate_name.to_string()
                    };
                    free_by_crate
                        .get(&(target, name.to_string()))
                        .cloned()
                        .unwrap_or_default()
                }
            }
        };

        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let mut outs: Vec<usize> = Vec::new();
            for call in &node.item.calls {
                outs.extend(resolve(node, &call.kind, &call.name));
            }
            outs.sort_unstable();
            outs.dedup();
            edges.push(outs);
        }

        // Fixpoint: transitive lock classes and may-block bits.
        let mut acq_all: Vec<BTreeSet<String>> = nodes
            .iter()
            .map(|n| {
                n.item
                    .locks
                    .iter()
                    .map(|l| qualify(&n.crate_name, &l.class))
                    .collect()
            })
            .collect();
        let mut blocks_any: Vec<bool> = nodes.iter().map(|n| !n.item.blocking.is_empty()).collect();
        loop {
            let mut changed = false;
            for id in 0..nodes.len() {
                for &callee in &edges[id] {
                    if callee == id {
                        continue;
                    }
                    if blocks_any[callee] && !blocks_any[id] {
                        blocks_any[id] = true;
                        changed = true;
                    }
                    let extra: Vec<String> = acq_all[callee]
                        .iter()
                        .filter(|c| !acq_all[id].contains(*c))
                        .cloned()
                        .collect();
                    if !extra.is_empty() {
                        acq_all[id].extend(extra);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        Graph {
            nodes,
            edges,
            acq_all,
            blocks_any,
        }
    }

    /// BFS from every node tagged `tag`; returns, per reached node, the call
    /// chain from its root (as `root → … → fn` qualified names).
    fn reach(&self, tag: &str) -> BTreeMap<usize, String> {
        let mut chain: BTreeMap<usize, String> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if node.item.has_tag(tag) {
                chain.insert(id, node.item.qualified.clone());
                queue.push(id);
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            let prefix = chain.get(&id).cloned().unwrap_or_default();
            for &callee in &self.edges[id] {
                if chain.contains_key(&callee) {
                    continue;
                }
                let label = format!("{prefix} → {}", self.nodes[callee].item.qualified);
                chain.insert(callee, label);
                queue.push(callee);
            }
        }
        chain
    }

    /// R7: allocation-shaped sites reachable from a `hot` root.
    fn rule_hot_path(&self, report: &mut GraphReport) {
        for (id, chain) in self.reach(TAG_HOT) {
            let node = &self.nodes[id];
            for site in &node.item.allocs {
                report.findings.push(Finding {
                    rule: Rule::HotPathAlloc,
                    file: node.file.clone(),
                    line: site.line,
                    col: 1,
                    message: format!("{} on the hot path ({chain})", site.what),
                });
            }
        }
    }

    /// R8: blocking-shaped sites reachable from an `event-loop` root.
    fn rule_event_loop(&self, report: &mut GraphReport) {
        for (id, chain) in self.reach(TAG_EVENT_LOOP) {
            let node = &self.nodes[id];
            for site in &node.item.blocking {
                report.findings.push(Finding {
                    rule: Rule::ReactorBlocking,
                    file: node.file.clone(),
                    line: site.line,
                    col: 1,
                    message: format!("{} reachable from the event loop ({chain})", site.what),
                });
            }
        }
    }

    /// R6: ordered lock pairs (advisories), pair-digraph cycles, blocking
    /// under a held lock, and held calls into may-block functions on the
    /// event-loop path (deny findings).
    fn rule_lock_order(&self, report: &mut GraphReport) {
        // Ordered pairs with their first witnessing site.
        let mut pairs: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();
        for node in &self.nodes {
            for acq in &node.item.locks {
                let to = qualify(&node.crate_name, &acq.class);
                for held in &acq.held {
                    let from = qualify(&node.crate_name, held);
                    pairs
                        .entry((from.clone(), to.clone()))
                        .or_insert_with(|| (node.file.clone(), acq.line, "direct".to_string()));
                }
            }
        }
        for (id, node) in self.nodes.iter().enumerate() {
            for (call, _) in node.item.calls.iter().zip(0..) {
                if call.held.is_empty() {
                    continue;
                }
                // Edges this call resolves to were already merged into
                // `edges[id]`; recompute the per-call resolution cheaply by
                // matching callee names.
                for &callee in &self.edges[id] {
                    if self.nodes[callee].item.name != call.name {
                        continue;
                    }
                    for to in &self.acq_all[callee] {
                        for held in &call.held {
                            let from = qualify(&node.crate_name, held);
                            if from == *to {
                                continue;
                            }
                            pairs.entry((from.clone(), to.clone())).or_insert_with(|| {
                                (
                                    node.file.clone(),
                                    call.line,
                                    format!("via call to `{}`", self.nodes[callee].item.qualified),
                                )
                            });
                        }
                    }
                }
            }
        }

        for ((from, to), (file, line, how)) in &pairs {
            report.advisories.push(Finding {
                rule: Rule::LockOrder,
                file: file.clone(),
                line: *line,
                col: 1,
                message: format!("lock `{from}` held while acquiring `{to}` ({how})"),
            });
        }

        // Cycle detection over the pair digraph.
        for cycle in find_cycles(&pairs) {
            let key = (cycle[0].clone(), cycle[1].clone());
            let (file, line, _) = pairs.get(&key).cloned().unwrap_or_default();
            report.findings.push(Finding {
                rule: Rule::LockOrder,
                file,
                line,
                col: 1,
                message: format!("lock-order cycle: {}", cycle.join(" → ")),
            });
        }

        // Blocking while holding a lock (workspace-wide, condvar-exempt).
        for node in &self.nodes {
            for site in &node.item.blocking {
                if site.held.is_empty() {
                    continue;
                }
                let held: Vec<String> = site
                    .held
                    .iter()
                    .map(|h| qualify(&node.crate_name, h))
                    .collect();
                report.findings.push(Finding {
                    rule: Rule::LockOrder,
                    file: node.file.clone(),
                    line: site.line,
                    col: 1,
                    message: format!("{} while holding lock(s) {}", site.what, held.join(", ")),
                });
            }
        }

        // Held call into a may-block function, on the event-loop path only
        // (elsewhere the advisory pair listing already surfaces the shape).
        let loop_reach = self.reach(TAG_EVENT_LOOP);
        for (id, chain) in &loop_reach {
            let node = &self.nodes[*id];
            for call in &node.item.calls {
                if call.held.is_empty() {
                    continue;
                }
                for &callee in &self.edges[*id] {
                    if self.nodes[callee].item.name != call.name || !self.blocks_any[callee] {
                        continue;
                    }
                    let held: Vec<String> = call
                        .held
                        .iter()
                        .map(|h| qualify(&node.crate_name, h))
                        .collect();
                    report.findings.push(Finding {
                        rule: Rule::LockOrder,
                        file: node.file.clone(),
                        line: call.line,
                        col: 1,
                        message: format!(
                            "call to `{}` (may block) while holding {} on the event-loop path ({chain})",
                            self.nodes[callee].item.qualified,
                            held.join(", ")
                        ),
                    });
                }
            }
        }
    }
}

fn qualify(crate_name: &str, class: &str) -> String {
    format!("{crate_name}::{class}")
}

/// Finds elementary cycles in the pair digraph — one representative per
/// strongly connected component with ≥ 2 nodes, plus every self-loop. The
/// returned vector lists the cycle's classes with the start repeated last.
fn find_cycles(pairs: &BTreeMap<(String, String), (String, usize, String)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in pairs.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
        adj.entry(to.as_str()).or_default();
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    for ((from, to), _) in pairs.iter() {
        if from == to {
            cycles.push(vec![from.clone(), to.clone()]);
        }
    }
    // DFS from each node looking for a path back to it (the graphs here are
    // tiny — dozens of classes — so the quadratic sweep is fine).
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut seen_cycle_keys: BTreeSet<String> = BTreeSet::new();
    for &start in &nodes {
        // Find the shortest path start → … → start of length ≥ 2 via BFS.
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: Vec<&str> = vec![start];
        let mut head = 0;
        let mut found = false;
        while head < queue.len() && !found {
            let u = queue[head];
            head += 1;
            for &v in adj.get(u).map(|v| v.as_slice()).unwrap_or(&[]) {
                if v == start && u != start {
                    parent.insert("__back__", u);
                    found = true;
                    break;
                }
                if v != start && !parent.contains_key(v) {
                    parent.insert(v, u);
                    queue.push(v);
                }
            }
        }
        if !found {
            continue;
        }
        let mut path = vec![start.to_string()];
        let mut cur = *parent.get("__back__").unwrap_or(&start);
        let mut tail = Vec::new();
        while cur != start {
            tail.push(cur.to_string());
            cur = parent.get(cur).copied().unwrap_or(start);
        }
        tail.reverse();
        path.extend(tail);
        path.push(start.to_string());
        // Canonical key so A→B→A and B→A→B report once.
        let mut sorted = path.clone();
        sorted.sort();
        sorted.dedup();
        let key = sorted.join("|");
        if seen_cycle_keys.insert(key) {
            cycles.push(path);
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;
    use crate::parse::analyze;

    fn nodes_of(crate_name: &str, file: &str, src: &str) -> Vec<Node> {
        analyze(&mask(src))
            .items
            .into_iter()
            .map(|item| Node {
                crate_name: crate_name.to_string(),
                file: file.to_string(),
                item,
            })
            .collect()
    }

    #[test]
    fn direct_and_transitive_hot_reach() {
        let src = "// awb-audit: hot\nfn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() { let v: Vec<u8> = Vec::new(); }\nfn cold() { let s = String::new(); }\n";
        let report = analyze_graph(nodes_of("sim", "src/k.rs", src));
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("root → mid → leaf"));
    }

    #[test]
    fn recursive_edges_terminate() {
        let src =
            "// awb-audit: hot\nfn a() { b(); }\nfn b() { a(); c(); }\nfn c() { x.collect(); }\n";
        let report = analyze_graph(nodes_of("sim", "src/k.rs", src));
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn method_calls_resolve_same_crate_only() {
        let hot = "// awb-audit: hot\nfn root(&self) { self.helper(); }\n";
        let other = "impl Widget {\n    fn helper(&self) { let s = format!(\"x\"); }\n}\n";
        let mut nodes = nodes_of("sim", "src/a.rs", hot);
        nodes.extend(nodes_of("sim", "src/b.rs", other));
        let report = analyze_graph(nodes);
        assert_eq!(report.findings.len(), 1);

        // Same shape, different crates: no edge.
        let mut nodes = nodes_of("sim", "src/a.rs", hot);
        nodes.extend(nodes_of("sets", "src/b.rs", other));
        let report = analyze_graph(nodes);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn common_method_names_do_not_resolve() {
        let src = "// awb-audit: hot\nfn root(&self) { self.push(1); }\nimpl Pile {\n    fn push(&self, x: u8) { let s = format!(\"{x}\"); }\n}\n";
        let report = analyze_graph(nodes_of("sim", "src/k.rs", src));
        assert!(report.findings.is_empty());
    }

    #[test]
    fn lock_cycle_is_a_finding_and_order_is_advisory() {
        let src = "impl S {\n    fn ab(&self) {\n        let a = lock_recover(&self.alpha);\n        let b = lock_recover(&self.beta);\n    }\n    fn ba(&self) {\n        let b = lock_recover(&self.beta);\n        let a = lock_recover(&self.alpha);\n    }\n}\n";
        let report = analyze_graph(nodes_of("service", "src/s.rs", src));
        assert_eq!(report.advisories.len(), 2);
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("lock-order cycle")));
    }

    #[test]
    fn consistent_order_is_not_a_cycle() {
        let src = "impl S {\n    fn one(&self) {\n        let a = lock_recover(&self.alpha);\n        let b = lock_recover(&self.beta);\n    }\n    fn two(&self) {\n        let a = lock_recover(&self.alpha);\n        let b = lock_recover(&self.beta);\n    }\n}\n";
        let report = analyze_graph(nodes_of("service", "src/s.rs", src));
        assert_eq!(report.advisories.len(), 1);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn interprocedural_pair_via_call() {
        let src = "impl S {\n    fn outer(&self) {\n        let a = lock_recover(&self.alpha);\n        self.take_beta();\n    }\n    fn take_beta(&self) {\n        let b = lock_recover(&self.beta);\n    }\n}\n";
        let report = analyze_graph(nodes_of("service", "src/s.rs", src));
        assert!(report
            .advisories
            .iter()
            .any(|a| a.message.contains("via call to `S::take_beta`")));
    }

    #[test]
    fn blocking_under_lock_is_denied() {
        let src = "fn f(&self) {\n    let g = lock_recover(&self.state);\n    std::thread::sleep(d);\n}\n";
        let report = analyze_graph(nodes_of("service", "src/s.rs", src));
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("while holding lock(s) service::state")));
    }
}
