//! A lightweight Rust source lexer for line-oriented lint rules.
//!
//! The auditor does not need a full parse — only a faithful separation of
//! *code* from *non-code* (comments, string/char literals) plus the line
//! ranges occupied by `#[cfg(test)]` items. [`mask`] produces a copy of the
//! source with every comment and literal body replaced by spaces, preserving
//! the line/column structure, so the rule matchers can run plain substring
//! scans without ever firing inside a doc comment or a format string.
//!
//! Handled: line comments, (nested) block comments, string literals with
//! escapes, raw strings `r#"…"#` at any hash depth, byte and byte-raw
//! strings, char literals, and the `'lifetime` ambiguity.

/// One comment extracted during masking, for waiver parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Whether only whitespace precedes the comment on its line — an
    /// own-line comment waives the next code line, a trailing one its own.
    pub own_line: bool,
    /// The comment body, without the `//` / `/*` markers.
    pub text: String,
}

/// The result of [`mask`]: blanked source plus the extracted comments.
#[derive(Debug, Clone)]
pub struct Masked {
    /// The source with comment and literal bodies replaced by spaces.
    /// Newlines are preserved, so line numbers match the original; columns
    /// match for all code outside literals.
    pub text: String,
    /// Every comment in source order.
    pub comments: Vec<Comment>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Blanks comments and literals out of `source` (see module docs).
pub fn mask(source: &str) -> Masked {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut state = State::Code;
    let mut line = 1usize;
    let mut line_had_code = false;
    let mut comment_text = String::new();
    let mut comment_start = (1usize, true);
    let mut i = 0usize;

    // Pushes `c` through to the output, blanked unless it is structural.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
        }
        match state {
            State::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    comment_start = (line, !line_had_code);
                    comment_text.clear();
                    state = State::LineComment;
                    blank(&mut out, c);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                    continue;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    comment_start = (line, !line_had_code);
                    comment_text.clear();
                    state = State::BlockComment(1);
                    blank(&mut out, c);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                }
                'r' | 'b' if !prev_is_ident(&chars, i) && raw_str_hashes(&chars, i).is_some() => {
                    // r"…", r#"…"#, b"…", br#"…"# — blank through the guard.
                    // Non-raw byte strings still process escapes, so they go
                    // through the ordinary string state.
                    let (raw, hashes, skip) = raw_str_hashes(&chars, i).unwrap_or((false, 0, 1));
                    state = if raw {
                        State::RawStr(hashes)
                    } else {
                        State::Str
                    };
                    for &g in chars.iter().skip(i).take(skip) {
                        blank(&mut out, g);
                    }
                    i += skip;
                    line_had_code = true;
                    continue;
                }
                '\'' => {
                    if is_char_literal(&chars, i) {
                        state = State::Char;
                    }
                    out.push('\'');
                }
                _ => {
                    out.push(c);
                    if c == '\n' {
                        line_had_code = false;
                    } else if !c.is_whitespace() {
                        line_had_code = true;
                    }
                }
            },
            State::LineComment => {
                if c == '\n' {
                    comments.push(Comment {
                        line: comment_start.0,
                        own_line: comment_start.1,
                        text: std::mem::take(&mut comment_text),
                    });
                    state = State::Code;
                    line_had_code = false;
                    out.push('\n');
                } else {
                    comment_text.push(c);
                    blank(&mut out, c);
                }
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    blank(&mut out, c);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                    if depth == 1 {
                        comments.push(Comment {
                            line: comment_start.0,
                            own_line: comment_start.1,
                            text: std::mem::take(&mut comment_text),
                        });
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    blank(&mut out, c);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                    continue;
                }
                comment_text.push(c);
                blank(&mut out, c);
            }
            State::Str => match c {
                '\\' => {
                    blank(&mut out, c);
                    if let Some(&next) = chars.get(i + 1) {
                        blank(&mut out, next);
                        i += 2;
                        if next == '\n' {
                            line += 1;
                        }
                        continue;
                    }
                }
                '"' => {
                    out.push('"');
                    state = State::Code;
                }
                _ => blank(&mut out, c),
            },
            State::RawStr(hashes) => {
                if c == '"' && closing_hashes(&chars, i + 1) >= hashes {
                    for &g in chars.iter().skip(i).take(1 + hashes as usize) {
                        blank(&mut out, g);
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                    continue;
                }
                blank(&mut out, c);
            }
            State::Char => match c {
                '\\' => {
                    blank(&mut out, c);
                    if let Some(&next) = chars.get(i + 1) {
                        blank(&mut out, next);
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    out.push('\'');
                    state = State::Code;
                }
                _ => blank(&mut out, c),
            },
        }
        i += 1;
    }
    if state == State::LineComment || matches!(state, State::BlockComment(_)) {
        comments.push(Comment {
            line: comment_start.0,
            own_line: comment_start.1,
            text: comment_text,
        });
    }
    Masked {
        text: out,
        comments,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If position `i` starts a raw/byte string guard (`r`, `br`, `b`, followed
/// by hashes and a quote), returns
/// `(is_raw, hash_count, chars_through_opening_quote)`.
fn raw_str_hashes(chars: &[char], i: usize) -> Option<(bool, u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') && (raw || (hashes == 0 && j > i)) {
        // b"…" (j > i: consumed the b), r"…", r#"…"#, br#"…"#.
        Some((raw, hashes, j - i + 1))
    } else {
        None
    }
}

fn closing_hashes(chars: &[char], from: usize) -> u32 {
    let mut n = 0u32;
    while chars.get(from + n as usize) == Some(&'#') {
        n += 1;
    }
    n
}

/// Distinguishes a char literal from a lifetime: `'x'` and `'\n'` are
/// literals; `'a` followed by anything but a closing quote is a lifetime.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Inclusive 1-based line ranges of `#[cfg(test)]` items in masked text.
///
/// The attribute's item body is found by scanning to the first `{` (or a
/// terminating `;` for `mod name;` forms) and matching braces — safe on
/// masked text, where braces inside literals have been blanked.
pub fn cfg_test_ranges(masked: &str) -> Vec<(usize, usize)> {
    const NEEDLE: &str = "#[cfg(test)]";
    let mut ranges = Vec::new();
    let bytes = masked.as_bytes();
    let mut search_from = 0usize;
    while let Some(pos) = masked[search_from..].find(NEEDLE) {
        let start = search_from + pos;
        search_from = start + NEEDLE.len();
        let start_line = 1 + masked[..start].bytes().filter(|&b| b == b'\n').count();
        let mut depth = 0usize;
        let mut end = None;
        for (off, &b) in bytes.iter().enumerate().skip(start + NEEDLE.len()) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(off);
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = Some(off);
                    break;
                }
                _ => {}
            }
        }
        let end_off = end.unwrap_or(bytes.len().saturating_sub(1));
        let end_line = 1 + masked[..=end_off.min(masked.len() - 1)]
            .bytes()
            .filter(|&b| b == b'\n')
            .count();
        ranges.push((start_line, end_line));
        search_from = search_from.max(end_off);
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings_preserving_lines() {
        let src = "let x = \"a.unwrap()\"; // trailing unwrap()\nlet y = 1;\n";
        let m = mask(src);
        assert!(!m.text.contains("unwrap"));
        assert_eq!(m.text.lines().count(), src.lines().count());
        assert_eq!(m.comments.len(), 1);
        assert_eq!(m.comments[0].line, 1);
        assert!(!m.comments[0].own_line);
        assert_eq!(m.comments[0].text, " trailing unwrap()");
    }

    #[test]
    fn own_line_comment_is_detected() {
        let m = mask("    // waiver here\ncode();\n");
        assert!(m.comments[0].own_line);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let m = mask("/* outer /* inner */ still */ code.unwrap()");
        assert!(m.text.contains(".unwrap()"));
        assert_eq!(m.comments.len(), 1);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = mask("let s = r#\"panic!(\"oops\")\"#; s.len();");
        assert!(!m.text.contains("panic"));
        assert!(m.text.contains("s.len()"));
    }

    #[test]
    fn byte_and_plain_raw_strings() {
        let m = mask("let a = b\"unwrap()\"; let b2 = r\"expect(\";");
        assert!(!m.text.contains("unwrap"));
        assert!(!m.text.contains("expect"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let m = mask("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; \"s\"");
        assert!(m.text.contains("fn f<'a>"));
        // The trailing string is still recognized and blanked.
        assert!(!m.text.contains('s') || !m.text.ends_with("\"s\""));
    }

    #[test]
    fn escaped_quote_in_string_does_not_terminate() {
        let m = mask("let s = \"a\\\"b.unwrap()\"; x();");
        assert!(!m.text.contains("unwrap"));
        assert!(m.text.contains("x()"));
    }

    #[test]
    fn char_escape_of_quote() {
        let m = mask("let q = '\\''; y.unwrap();");
        assert!(m.text.contains("y.unwrap()"));
    }

    #[test]
    fn cfg_test_range_covers_module() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let m = mask(src);
        let ranges = cfg_test_ranges(&m.text);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn cfg_test_on_single_item() {
        let src = "#[cfg(test)]\nfn helper() {\n    1\n}\nfn real() {}\n";
        let ranges = cfg_test_ranges(&mask(src).text);
        assert_eq!(ranges, vec![(1, 4)]);
    }
}
