//! Command-line entry point for the workspace auditor.
//!
//! ```text
//! cargo run -p awb-audit                # human diagnostics, exit 0
//! cargo run -p awb-audit -- --deny      # exit 1 if any finding survives
//! cargo run -p awb-audit -- --json      # machine-readable report
//! cargo run -p awb-audit -- --list-rules
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use awb_audit::{audit_workspace, find_workspace_root, parse_baseline, AuditOptions, Rule};

const USAGE: &str = "usage: awb-audit [--deny] [--json] [--strict-indexing] [--list-rules]
                 [--baseline FILE] [--write-baseline FILE] [ROOT]

Audits the awb workspace sources: panic-freedom, float-equality,
determinism and lint-header lints plus the graph rules (unsafe
confinement, lock-order/deadlock, hot-path allocation, reactor
blocking-call).

  --deny                 exit with status 1 when any finding survives waivers
  --json                 emit the machine-readable JSON report instead of text
  --strict-indexing      also report advisory `[idx]` indexing notes (never denied)
  --list-rules           print the rule registry and exit
  --baseline FILE        ratchet mode: suppress findings recorded in FILE,
                         fail (under --deny) only on new ones
  --write-baseline FILE  record the current findings as the baseline and exit 0
  ROOT                   workspace root (default: discovered from the current dir)";

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut list_rules = false;
    let mut options = AuditOptions::default();
    let mut root_arg: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--strict-indexing" => options.strict_indexing = true,
            "--list-rules" => list_rules = true,
            "--baseline" | "--write-baseline" => {
                let Some(value) = args.next() else {
                    eprintln!("awb-audit: `{arg}` requires a FILE argument\n{USAGE}");
                    return ExitCode::from(2);
                };
                if arg == "--baseline" {
                    baseline_path = Some(PathBuf::from(value));
                } else {
                    write_baseline_path = Some(PathBuf::from(value));
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("awb-audit: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => {
                if root_arg.replace(PathBuf::from(path)).is_some() {
                    eprintln!("awb-audit: multiple ROOT arguments\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    if list_rules {
        for rule in Rule::all() {
            println!("{:18} {}", rule.name(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("awb-audit: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "awb-audit: no workspace Cargo.toml found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut report = match audit_workspace(&root, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("awb-audit: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("awb-audit: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "awb-audit: recorded {} finding(s) as baseline in {}",
            report.findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("awb-audit: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let suppressed = report.apply_baseline(&parse_baseline(&text));
        eprintln!(
            "awb-audit: {suppressed} baseline finding(s) suppressed; {} new",
            report.findings.len()
        );
    }

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }

    if deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
