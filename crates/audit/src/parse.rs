//! A brace-matching item parser over the masked source.
//!
//! The per-line rules (R1–R4) never need to know where a function starts or
//! which guard is live; the graph rules (R5–R8) do. This module walks the
//! masked text once and extracts, per `fn` item:
//!
//! * the item identity (`Type::name` inside an `impl` block, bare name
//!   otherwise) and its body span,
//! * every call site, classified as free (`helper(…)`), path
//!   (`rules::helper(…)`, `Vec::new(…)`) or method (`x.helper(…)`),
//! * every lock acquisition (`.lock()`, `lock_recover(&…)`) with the set of
//!   guards already held at that point, tracked through a lexical guard
//!   stack (let-bound guards live to the end of their block or an explicit
//!   `drop(name)`; unbound temporaries live to the end of their statement,
//!   which for `if let`/`match` scrutinees extends through the body — the
//!   same rule Rust's temporary-lifetime extension applies),
//! * condvar waits (`wait_recover(&cv, guard)`, `cv.wait(guard)`) — these
//!   re-acquire an already-held guard and are therefore *blocking sites*,
//!   never new acquisitions,
//! * `unsafe` sites (blocks, fns, impls) and whether a `// SAFETY:` comment
//!   sits within the three lines above,
//! * allocation-shaped sites (`Vec::new`, `vec!`, `format!`, `.clone()`,
//!   `.collect()`, …) and blocking-shaped sites (`thread::sleep`, argless
//!   `.recv()`/`.join()`, blocking `read_*` calls, condvar waits),
//! * `// awb-audit: hot` / `// awb-audit: event-loop` tags attached to the
//!   next `fn` item (attribute lines may intervene).
//!
//! The parser is deliberately not a full grammar: it tracks brace, paren and
//! bracket depth, statement boundaries and `impl` headers, which is enough
//! to scope guards and attribute sites to the innermost enclosing function.
//! Closure bodies are attributed to the enclosing `fn` (a guard held at the
//! point a closure is *defined* is treated as held inside it — an
//! over-approximation, see DESIGN.md §5k).

use crate::lexer::Masked;

/// A call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CallKind {
    /// `helper(…)` — no receiver, no path qualifier.
    Free,
    /// `a::b::helper(…)` — the full path is kept for resolution.
    Path(String),
    /// `recv.helper(…)` — resolved by bare name within the crate only.
    Method,
}

/// One call site: kind, callee name (last path segment) and source line.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    pub kind: CallKind,
    pub name: String,
    pub line: usize,
    /// Lock classes held when the call is made (crate-unqualified).
    pub held: Vec<String>,
}

/// One lock acquisition: the lock class (receiver / argument's last field
/// segment) and the classes already held when it was taken.
#[derive(Debug, Clone)]
pub(crate) struct LockAcq {
    pub class: String,
    pub line: usize,
    pub held: Vec<String>,
}

/// An `unsafe` block / fn / impl site.
#[derive(Debug, Clone)]
pub(crate) struct UnsafeSite {
    pub line: usize,
    pub what: &'static str,
    /// A comment containing `SAFETY` sits on this line or ≤ 3 lines above.
    pub has_safety: bool,
}

/// An allocation-shaped or blocking-shaped site.
#[derive(Debug, Clone)]
pub(crate) struct Site {
    pub line: usize,
    pub what: String,
    /// For blocking sites: lock classes still held at the site (a condvar
    /// wait's own guard is excluded — the wait releases it).
    pub held: Vec<String>,
}

/// One parsed `fn` item with everything the graph rules need.
#[derive(Debug, Clone)]
pub(crate) struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `Type::name` inside an `impl Type` block, else the bare name.
    pub qualified: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `// awb-audit: hot` / `event-loop` tags attached to this item.
    pub tags: Vec<String>,
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockAcq>,
    pub unsafes: Vec<UnsafeSite>,
    pub allocs: Vec<Site>,
    pub blocking: Vec<Site>,
}

impl FnItem {
    /// Whether the item carries the given tag.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }
}

/// The parse result for one file.
#[derive(Debug, Clone, Default)]
pub(crate) struct FileAnalysis {
    pub items: Vec<FnItem>,
    /// `unsafe` sites outside any `fn` body (e.g. `unsafe impl Send`).
    pub file_unsafes: Vec<UnsafeSite>,
    /// Tag comments that could not be attached to a following `fn`.
    pub tag_errors: Vec<(usize, String)>,
}

/// Tags recognized after `// awb-audit:` that are annotations, not waivers.
pub(crate) const TAG_HOT: &str = "hot";
/// The event-loop root tag (see [`TAG_HOT`]).
pub(crate) const TAG_EVENT_LOOP: &str = "event-loop";

/// Method names too generic to resolve by bare name: linking every `.len()`
/// to every same-crate `fn len` would wire unrelated types together. Calls
/// to these names produce no graph edge (an under-approximation — a tagged
/// hot path calling e.g. a custom `push` through a method call is not
/// followed; name the call through a path to make it resolvable).
pub(crate) const COMMON_METHODS: &[&str] = &[
    "as_mut",
    "as_ref",
    "clear",
    "clone",
    "cmp",
    "contains",
    "default",
    "drain",
    "drop",
    "eq",
    "extend",
    "flush",
    "fmt",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "is_empty",
    "iter",
    "iter_mut",
    "len",
    "ne",
    "new",
    "next",
    "partial_cmp",
    "pop",
    "push",
    "read",
    "remove",
    "to_string",
    "write",
];

/// Lock-class names that are std stream locks, not mutexes.
const STREAM_LOCKS: &[&str] = &["stdin", "stdout", "stderr"];

/// The poison-recovering lock helpers are *intrinsics* of the analysis: a
/// call to one IS the acquisition, so no call edge is created and their own
/// bodies are not analyzed.
pub(crate) const LOCK_INTRINSICS: &[&str] = &["lock_recover", "wait_recover"];

const KEYWORDS: &[&str] = &[
    "as", "break", "continue", "else", "fn", "for", "if", "impl", "in", "let", "loop", "match",
    "mod", "move", "mut", "pub", "ref", "return", "static", "struct", "trait", "use", "where",
    "while",
];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

#[derive(Debug)]
enum ScopeKind {
    Impl(String),
    Fn { item: usize, guard_mark: usize },
    Other,
}

struct Scope {
    kind: ScopeKind,
    /// Brace depth *inside* this scope (depth after its `{`).
    depth: usize,
}

#[derive(Debug)]
struct Guard {
    class: String,
    /// Binding name for let-bound guards; `None` for statement temporaries.
    name: Option<String>,
    /// Brace depth at the acquisition site.
    depth: usize,
    temp: bool,
}

struct Parser<'a> {
    chars: &'a [char],
    i: usize,
    line: usize,
    depth: usize,
    paren: usize,
    scopes: Vec<Scope>,
    guards: Vec<Guard>,
    pending_impl: Option<String>,
    pending_fn: Option<FnItem>,
    /// `let [mut] name =` seen since the last statement boundary.
    pending_let: Option<String>,
    items: Vec<FnItem>,
    file_unsafes: Vec<UnsafeSite>,
}

/// Parses the masked source of one file.
pub(crate) fn analyze(masked: &Masked) -> FileAnalysis {
    let chars: Vec<char> = masked.text.chars().collect();
    let mut p = Parser {
        chars: &chars,
        i: 0,
        line: 1,
        depth: 0,
        paren: 0,
        scopes: Vec::new(),
        guards: Vec::new(),
        pending_impl: None,
        pending_fn: None,
        pending_let: None,
        items: Vec::new(),
        file_unsafes: Vec::new(),
    };
    p.run();
    let mut analysis = FileAnalysis {
        items: p.items,
        file_unsafes: p.file_unsafes,
        tag_errors: Vec::new(),
    };
    attach_tags(masked, &mut analysis);
    mark_safety(masked, &mut analysis);
    analysis
}

impl Parser<'_> {
    fn run(&mut self) {
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            match c {
                '\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                '{' => {
                    self.open_brace();
                    self.i += 1;
                }
                '}' => {
                    self.close_brace();
                    self.i += 1;
                }
                '(' => {
                    self.paren += 1;
                    self.i += 1;
                }
                ')' => {
                    self.paren = self.paren.saturating_sub(1);
                    self.i += 1;
                }
                ';' => {
                    self.statement_end();
                    self.i += 1;
                }
                c if is_ident_start(c) && !self.prev_is_ident() => self.word(),
                _ => self.i += 1,
            }
        }
    }

    fn prev_is_ident(&self) -> bool {
        self.i > 0 && is_ident_char(self.chars[self.i - 1])
    }

    fn open_brace(&mut self) {
        self.depth += 1;
        let kind = if let Some(item) = self.pending_fn.take() {
            let idx = self.items.len();
            self.items.push(item);
            ScopeKind::Fn {
                item: idx,
                guard_mark: self.guards.len(),
            }
        } else if let Some(name) = self.pending_impl.take() {
            ScopeKind::Impl(name)
        } else {
            ScopeKind::Other
        };
        self.scopes.push(Scope {
            kind,
            depth: self.depth,
        });
    }

    fn close_brace(&mut self) {
        if self.depth == 0 {
            return;
        }
        // End-of-statement for temporaries whose statement's block construct
        // (if let / match body) closes here, and for everything deeper.
        let after = self.depth - 1;
        self.guards.retain(|g| {
            if g.temp {
                g.depth < after
            } else {
                g.depth <= after
            }
        });
        while self.scopes.last().is_some_and(|s| s.depth > after) {
            if let Some(scope) = self.scopes.pop() {
                if let ScopeKind::Fn { guard_mark, .. } = scope.kind {
                    let mark = guard_mark.min(self.guards.len());
                    self.guards.truncate(mark);
                }
            }
        }
        self.depth = after;
        self.pending_let = None;
    }

    fn statement_end(&mut self) {
        if self.paren == 0 {
            let d = self.depth;
            self.guards.retain(|g| !(g.temp && g.depth == d));
            self.pending_let = None;
            // A `;` at paren depth 0 before the body `{` means a bodyless
            // trait-method declaration — discard it.
            self.pending_fn = None;
        }
    }

    /// The innermost enclosing fn item index, if any.
    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn { item, .. } => Some(item),
            _ => None,
        })
    }

    /// The innermost enclosing impl type name, if any.
    fn current_impl(&self) -> Option<&str> {
        self.scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Impl(name) => Some(name.as_str()),
            _ => None,
        })
    }

    fn held_classes(&self) -> Vec<String> {
        self.guards.iter().map(|g| g.class.clone()).collect()
    }

    fn word(&mut self) {
        let start = self.i;
        while self.i < self.chars.len() && is_ident_char(self.chars[self.i]) {
            self.i += 1;
        }
        let word: String = self.chars[start..self.i].iter().collect();
        match word.as_str() {
            // `impl` inside a pending fn signature is return-position
            // `impl Trait`, not an impl block header.
            "impl" if self.pending_fn.is_none() => self.pending_impl = Some(self.read_impl_type()),
            "impl" => {}
            "fn" => self.read_fn_signature(),
            "unsafe" => self.read_unsafe(),
            "let" => self.read_let_binding(),
            _ => self.maybe_call(start, &word),
        }
    }

    /// Looks ahead (without consuming) from after `impl` to the body `{` and
    /// extracts the implemented type's last path segment.
    fn read_impl_type(&self) -> String {
        let mut j = self.i;
        let mut header = String::new();
        while j < self.chars.len() && self.chars[j] != '{' && self.chars[j] != ';' {
            header.push(self.chars[j]);
            j += 1;
        }
        extract_impl_type(&header)
    }

    fn read_fn_signature(&mut self) {
        self.skip_ws();
        let start = self.i;
        while self.i < self.chars.len() && is_ident_char(self.chars[self.i]) {
            self.i += 1;
        }
        if start == self.i {
            return;
        }
        let name: String = self.chars[start..self.i].iter().collect();
        let qualified = match self.current_impl() {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        self.pending_fn = Some(FnItem {
            name,
            qualified,
            line: self.line,
            tags: Vec::new(),
            calls: Vec::new(),
            locks: Vec::new(),
            unsafes: Vec::new(),
            allocs: Vec::new(),
            blocking: Vec::new(),
        });
    }

    fn read_unsafe(&mut self) {
        let mut j = self.i;
        while j < self.chars.len() && self.chars[j].is_whitespace() {
            j += 1;
        }
        let what = match self.chars.get(j) {
            Some('{') => "unsafe block",
            Some(c) if is_ident_start(*c) => {
                let mut k = j;
                while k < self.chars.len() && is_ident_char(self.chars[k]) {
                    k += 1;
                }
                match self.chars[j..k].iter().collect::<String>().as_str() {
                    "fn" => "unsafe fn",
                    "impl" => "unsafe impl",
                    "trait" => "unsafe trait",
                    _ => return,
                }
            }
            _ => return,
        };
        let site = UnsafeSite {
            line: self.line,
            what,
            has_safety: false,
        };
        match self.current_fn() {
            Some(idx) => self.items[idx].unsafes.push(site),
            None => self.file_unsafes.push(site),
        }
    }

    fn read_let_binding(&mut self) {
        self.pending_let = None;
        let save = self.i;
        self.skip_ws();
        let mut start = self.i;
        while self.i < self.chars.len() && is_ident_char(self.chars[self.i]) {
            self.i += 1;
        }
        let first: String = self.chars[start..self.i].iter().collect();
        if first == "mut" {
            self.skip_ws();
            start = self.i;
            while self.i < self.chars.len() && is_ident_char(self.chars[self.i]) {
                self.i += 1;
            }
        }
        let name: String = self.chars[start..self.i].iter().collect();
        // Only a plain `let [mut] name =` binds a guard; destructuring
        // patterns (`let Some(x) = …`, `let (a, b) = …`) bind through a
        // temporary, which the statement-scoped rule covers.
        let mut j = self.i;
        while j < self.chars.len() && self.chars[j].is_whitespace() {
            j += 1;
        }
        if !name.is_empty()
            && self.chars.get(j) == Some(&'=')
            && self.chars.get(j + 1) != Some(&'=')
        {
            self.pending_let = Some(name);
        } else {
            self.i = save;
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c == '\n' {
                self.line += 1;
            } else if !c.is_whitespace() {
                break;
            }
            self.i += 1;
        }
    }

    /// After reading identifier `word` starting at `start`, decides whether
    /// it is a call / macro / lock site and records it.
    fn maybe_call(&mut self, start: usize, word: &str) {
        if KEYWORDS.contains(&word) {
            return;
        }
        // Look past optional whitespace and a `::<…>` turbofish.
        let mut j = self.i;
        while j < self.chars.len() && self.chars[j] == ' ' {
            j += 1;
        }
        let mut turbofish = false;
        if self.chars.get(j) == Some(&':')
            && self.chars.get(j + 1) == Some(&':')
            && self.chars.get(j + 2) == Some(&'<')
        {
            let mut angle = 0usize;
            let mut k = j + 2;
            while k < self.chars.len() {
                match self.chars[k] {
                    '<' => angle += 1,
                    '>' => {
                        angle -= 1;
                        if angle == 0 {
                            break;
                        }
                    }
                    ';' | '{' => return,
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
            turbofish = true;
            while j < self.chars.len() && self.chars[j] == ' ' {
                j += 1;
            }
        }
        let is_macro = self.chars.get(j) == Some(&'!') && !turbofish;
        if is_macro {
            self.record_macro(word);
            return;
        }
        if self.chars.get(j) != Some(&'(') {
            return;
        }
        let before = start.checked_sub(1).map(|k| self.chars[k]);
        let kind = match before {
            Some('.') => CallKind::Method,
            Some(':') if start >= 2 && self.chars[start - 2] == ':' => {
                CallKind::Path(self.read_path_backwards(start, word))
            }
            _ => CallKind::Free,
        };
        self.record_call(kind, word, j);
    }

    /// Reconstructs `a::b::word` scanning left from `start`.
    fn read_path_backwards(&self, start: usize, word: &str) -> String {
        let mut segs = vec![word.to_string()];
        let mut k = start;
        while k >= 2 && self.chars[k - 1] == ':' && self.chars[k - 2] == ':' {
            // A `>` before the `::` would be generic args (`Foo<T>::bar`) —
            // rare in this workspace; stop at the unqualifiable segment.
            let e = k - 2;
            let mut s = e;
            while s > 0 && is_ident_char(self.chars[s - 1]) {
                s -= 1;
            }
            if s == e {
                break;
            }
            segs.push(self.chars[s..e].iter().collect());
            k = s;
        }
        segs.reverse();
        segs.join("::")
    }

    fn record_macro(&mut self, name: &str) {
        let banned = matches!(name, "format" | "vec");
        if !banned {
            return;
        }
        let Some(idx) = self.current_fn() else { return };
        let line = self.line;
        self.items[idx].allocs.push(Site {
            line,
            what: format!("`{name}!` macro"),
            held: Vec::new(),
        });
    }

    /// Records a call site at the open paren `open`, including lock/alloc/
    /// blocking classification.
    fn record_call(&mut self, kind: CallKind, name: &str, open: usize) {
        let line = self.line;
        let args = self.call_args(open);
        let close = self.matching_paren(open);

        // Lock intrinsics and std mutex locks become acquisitions / waits.
        if name == "wait_recover" {
            self.record_condvar_wait(args.get(1).cloned().unwrap_or_default(), line);
            return;
        }
        if name == "lock_recover" {
            let class = last_segment(args.first().map(String::as_str).unwrap_or(""));
            self.record_acquisition(class, line, close);
            return;
        }
        if name == "lock" && kind == CallKind::Method && args.is_empty() {
            let class = self.receiver_segment(open);
            if !STREAM_LOCKS.contains(&class.as_str()) {
                self.record_acquisition(class, line, close);
            }
            return;
        }
        if name == "wait" && kind == CallKind::Method && args.len() == 1 {
            let arg = last_segment(&args[0]);
            if self.guards.iter().any(|g| g.name.as_deref() == Some(&arg)) {
                self.record_condvar_wait(args[0].clone(), line);
                return;
            }
        }
        if name == "drop" && kind == CallKind::Free && args.len() == 1 {
            let target = args[0].trim();
            self.guards.retain(|g| g.name.as_deref() != Some(target));
            return;
        }

        // Allocation-shaped sites.
        let alloc_what: Option<String> = match &kind {
            CallKind::Path(path) => {
                let qual = path.rsplit("::").nth(1).unwrap_or("");
                match (qual, name) {
                    ("Vec" | "Box" | "String", "new") | ("String", "from") => {
                        Some(format!("`{path}(…)`"))
                    }
                    _ => None,
                }
            }
            CallKind::Method
                if matches!(
                    name,
                    "clone" | "collect" | "to_string" | "to_owned" | "to_vec"
                ) =>
            {
                Some(format!("`.{name}()` call"))
            }
            _ => None,
        };

        // Blocking-shaped sites.
        let blocking_what: Option<String> = match &kind {
            CallKind::Path(path) if name == "sleep" && path.contains("thread") => {
                Some(format!("`{path}(…)`"))
            }
            CallKind::Method if matches!(name, "recv" | "join") && args.is_empty() => {
                Some(format!("`.{name}()` call"))
            }
            _ if matches!(
                name,
                "read_to_end" | "read_to_string" | "read_line" | "read_exact"
            ) =>
            {
                Some(format!("`{name}(…)` call"))
            }
            _ => None,
        };

        let held = self.held_classes();
        if let Some(idx) = self.current_fn() {
            if let Some(what) = alloc_what {
                self.items[idx].allocs.push(Site {
                    line,
                    what,
                    held: Vec::new(),
                });
            }
            if let Some(what) = blocking_what {
                self.items[idx].blocking.push(Site {
                    line,
                    what,
                    held: held.clone(),
                });
            }
            self.items[idx].calls.push(CallSite {
                kind,
                name: name.to_string(),
                line,
                held,
            });
        }
    }

    /// Registers a lock acquisition: emits the site (with held classes) and
    /// pushes the new guard, let-bound or statement-temporary.
    fn record_acquisition(&mut self, class: String, line: usize, close: Option<usize>) {
        if class.is_empty() {
            return;
        }
        let held = self.held_classes();
        if let Some(idx) = self.current_fn() {
            self.items[idx].locks.push(LockAcq {
                class: class.clone(),
                line,
                held,
            });
        }
        // Bound iff the acquisition call is the whole initializer:
        // `let g = lock_recover(&x);` — next non-space after `)` is `;`.
        let bound = match (close, &self.pending_let) {
            (Some(cl), Some(_)) => {
                let mut k = cl + 1;
                while k < self.chars.len() && matches!(self.chars[k], ' ' | '\n') {
                    k += 1;
                }
                self.chars.get(k) == Some(&';')
            }
            _ => false,
        };
        let name = if bound {
            self.pending_let.clone()
        } else {
            None
        };
        let temp = name.is_none();
        self.guards.push(Guard {
            class,
            name,
            depth: self.depth,
            temp,
        });
    }

    /// A condvar wait releases and re-acquires `guard_expr`'s lock: the
    /// waited guard is exempt from "blocking while holding".
    fn record_condvar_wait(&mut self, guard_expr: String, line: usize) {
        let waited = last_segment(&guard_expr);
        let waited_class: Vec<String> = self
            .guards
            .iter()
            .filter(|g| g.name.as_deref() == Some(&waited))
            .map(|g| g.class.clone())
            .collect();
        let held: Vec<String> = self
            .guards
            .iter()
            .filter(|g| g.name.as_deref() != Some(&waited) && !waited_class.contains(&g.class))
            .map(|g| g.class.clone())
            .collect();
        if let Some(idx) = self.current_fn() {
            self.items[idx].blocking.push(Site {
                line,
                what: "condvar wait".to_string(),
                held,
            });
        }
    }

    /// Splits the top-level arguments of the call whose `(` is at `open`.
    fn call_args(&self, open: usize) -> Vec<String> {
        let mut args = Vec::new();
        let mut cur = String::new();
        let mut depth = 0usize;
        let mut k = open;
        while k < self.chars.len() {
            let c = self.chars[k];
            match c {
                '(' | '[' | '{' => {
                    depth += 1;
                    if depth > 1 {
                        cur.push(c);
                    }
                }
                ')' | ']' | '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                    cur.push(c);
                }
                ',' if depth == 1 => {
                    args.push(cur.trim().to_string());
                    cur.clear();
                }
                _ => {
                    if depth >= 1 {
                        cur.push(c);
                    }
                }
            }
            k += 1;
        }
        let last = cur.trim().to_string();
        if !last.is_empty() {
            args.push(last);
        }
        args
    }

    fn matching_paren(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for (k, &c) in self.chars.iter().enumerate().skip(open) {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// The identifier immediately before `.name(` — the lock receiver's last
    /// field segment (`self.inner.lock()` → `inner`).
    fn receiver_segment(&self, open: usize) -> String {
        // open points at `(`; walk back over `name`, the `.`, then the
        // receiver identifier.
        let mut k = open;
        while k > 0 && self.chars[k - 1] == ' ' {
            k -= 1;
        }
        // skip the method name
        while k > 0 && is_ident_char(self.chars[k - 1]) {
            k -= 1;
        }
        if k == 0 || self.chars[k - 1] != '.' {
            return String::new();
        }
        k -= 1;
        let end = k;
        while k > 0 && is_ident_char(self.chars[k - 1]) {
            k -= 1;
        }
        self.chars[k..end].iter().collect()
    }
}

/// Extracts the implemented type's last path segment from an impl header
/// (the text between `impl` and the body `{`).
fn extract_impl_type(header: &str) -> String {
    let mut rest = header;
    // Drop leading generic parameters `impl<T: Bound> …`.
    if rest.trim_start().starts_with('<') {
        let t = rest.trim_start();
        let mut depth = 0usize;
        let mut cut = t.len();
        for (i, c) in t.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &t[cut..];
    }
    if let Some(pos) = rest.find(" for ") {
        rest = &rest[pos + 5..];
    }
    if let Some(pos) = rest.find(" where ") {
        rest = &rest[..pos];
    }
    let rest = rest.trim().trim_start_matches('&');
    let rest = rest.split('<').next().unwrap_or(rest);
    rest.rsplit("::")
        .next()
        .unwrap_or(rest)
        .trim()
        .trim_matches(|c: char| !is_ident_char(c))
        .to_string()
}

/// The last `.`-separated identifier segment of an expression like
/// `&mut self.inner` → `inner`.
fn last_segment(expr: &str) -> String {
    let expr = expr
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim();
    let tail = expr.rsplit(['.', ':']).next().unwrap_or(expr);
    tail.chars().filter(|&c| is_ident_char(c)).collect()
}

/// Attaches `// awb-audit: hot` / `event-loop` comments to the next `fn`
/// item (blank and `#[…]` attribute lines may intervene).
fn attach_tags(masked: &Masked, analysis: &mut FileAnalysis) {
    let lines: Vec<&str> = masked.text.lines().collect();
    for comment in &masked.comments {
        // Same anchoring as waivers: the mark must open the comment.
        let Some(rest) = comment
            .text
            .trim_start()
            .strip_prefix(crate::rules::WAIVER_MARK)
        else {
            continue;
        };
        let rest = rest.trim_start();
        let first_word = rest
            .split(|c: char| c.is_whitespace())
            .next()
            .unwrap_or_default();
        let tag = if first_word == TAG_EVENT_LOOP {
            TAG_EVENT_LOOP
        } else if first_word == TAG_HOT {
            TAG_HOT
        } else {
            continue;
        };
        let target = if comment.own_line {
            // The tagged fn's signature line: skip blanks and attributes.
            let mut l = comment.line + 1;
            loop {
                match lines.get(l - 1) {
                    Some(text) if text.trim().is_empty() || text.trim().starts_with("#[") => l += 1,
                    _ => break,
                }
            }
            l
        } else {
            comment.line
        };
        match analysis.items.iter_mut().find(|it| it.line == target) {
            Some(item) => item.tags.push(tag.to_string()),
            None => analysis.tag_errors.push((
                comment.line,
                format!("`awb-audit: {tag}` tag does not precede a `fn` item"),
            )),
        }
    }
}

/// Marks `unsafe` sites that carry a `SAFETY` comment: either trailing on
/// the site's own line, or anywhere in the *contiguous* block of comment
/// lines directly above it (multi-line justifications keep their marker on
/// the first line; a blank or code line breaks adjacency).
fn mark_safety(masked: &Masked, analysis: &mut FileAnalysis) {
    let mut comment_lines: std::collections::BTreeMap<usize, bool> =
        std::collections::BTreeMap::new();
    for c in &masked.comments {
        let has = comment_lines.entry(c.line).or_insert(false);
        *has |= c.text.contains("SAFETY");
    }
    let covered = |line: usize| {
        if comment_lines.get(&line).copied().unwrap_or(false) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l > 0 {
            match comment_lines.get(&l) {
                Some(true) => return true,
                Some(false) => l -= 1,
                None => return false,
            }
        }
        false
    };
    for site in analysis
        .items
        .iter_mut()
        .flat_map(|it| it.unsafes.iter_mut())
        .chain(analysis.file_unsafes.iter_mut())
    {
        site.has_safety = covered(site.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;

    fn parse(src: &str) -> FileAnalysis {
        analyze(&mask(src))
    }

    #[test]
    fn fn_items_and_impl_qualification() {
        let a = parse(
            "fn free_one() { helper(); }\n\
             impl Widget {\n    fn method_one(&self) { self.other(); }\n}\n\
             impl<T: Clone> Holder<T> {\n    fn generic(&self) {}\n}\n\
             impl Display for Badge {\n    fn fmt(&self) {}\n}\n",
        );
        let names: Vec<&str> = a.items.iter().map(|i| i.qualified.as_str()).collect();
        assert_eq!(
            names,
            [
                "free_one",
                "Widget::method_one",
                "Holder::generic",
                "Badge::fmt"
            ]
        );
    }

    #[test]
    fn call_kinds_are_classified() {
        let a = parse(
            "fn caller() {\n    helper();\n    rules::scan(x);\n    recv.dispatch(y);\n    vec![1];\n    format!(\"x\");\n}\n",
        );
        let item = &a.items[0];
        let kinds: Vec<(&str, &CallKind)> = item
            .calls
            .iter()
            .map(|c| (c.name.as_str(), &c.kind))
            .collect();
        assert!(kinds.contains(&("helper", &CallKind::Free)));
        assert!(item.calls.iter().any(
            |c| c.name == "scan" && matches!(&c.kind, CallKind::Path(p) if p == "rules::scan")
        ));
        assert!(kinds.contains(&("dispatch", &CallKind::Method)));
        assert_eq!(item.allocs.len(), 2); // vec! and format!
    }

    #[test]
    fn nested_fns_attribute_to_innermost() {
        let a = parse("fn outer() {\n    fn inner() { leaf(); }\n    trunk();\n}\n");
        let outer = a.items.iter().find(|i| i.name == "outer").unwrap();
        let inner = a.items.iter().find(|i| i.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].name, "trunk");
        assert_eq!(inner.calls[0].name, "leaf");
    }

    #[test]
    fn let_bound_guard_spans_block_and_drop_releases() {
        let a = parse(
            "fn f(&self) {\n    let a = lock_recover(&self.alpha);\n    let b = lock_recover(&self.beta);\n    drop(a);\n    let c = lock_recover(&self.gamma);\n}\n",
        );
        let item = &a.items[0];
        assert_eq!(item.locks.len(), 3);
        assert_eq!(item.locks[0].held, Vec::<String>::new());
        assert_eq!(item.locks[1].held, vec!["alpha"]);
        // `a` was dropped before `gamma`.
        assert_eq!(item.locks[2].held, vec!["beta"]);
    }

    #[test]
    fn statement_temporary_guard_ends_at_semicolon() {
        let a = parse(
            "fn f(&self) {\n    let n = lock_recover(&self.first).len();\n    let g = lock_recover(&self.second);\n}\n",
        );
        let item = &a.items[0];
        assert_eq!(item.locks[1].held, Vec::<String>::new());
    }

    #[test]
    fn if_let_scrutinee_guard_spans_the_body() {
        let a = parse(
            "fn f(&self) {\n    if let Some(v) = lock_recover(&self.map).get(k) {\n        let g = lock_recover(&self.state);\n    }\n    let h = lock_recover(&self.other);\n}\n",
        );
        let item = &a.items[0];
        // Inside the body, `map` is held.
        assert_eq!(item.locks[1].held, vec!["map"]);
        // After the body closes, it is not.
        assert_eq!(item.locks[2].held, Vec::<String>::new());
    }

    #[test]
    fn method_lock_and_guard_scope_in_block() {
        let a = parse(
            "fn f(&self) {\n    {\n        let g = self.inner.lock();\n        g.push(1);\n    }\n    let h = self.outer.lock();\n}\n",
        );
        let item = &a.items[0];
        assert_eq!(item.locks[0].class, "inner");
        assert_eq!(item.locks[1].class, "outer");
        assert_eq!(item.locks[1].held, Vec::<String>::new());
    }

    #[test]
    fn condvar_wait_is_blocking_not_acquisition() {
        let a = parse(
            "fn pop(&self) {\n    let mut inner = lock_recover(&self.inner);\n    inner = wait_recover(&self.nonempty, inner);\n}\n",
        );
        let item = &a.items[0];
        assert_eq!(item.locks.len(), 1);
        assert_eq!(item.blocking.len(), 1);
        assert_eq!(item.blocking[0].what, "condvar wait");
        // The waited guard is exempt: nothing else held.
        assert!(item.blocking[0].held.is_empty());
    }

    #[test]
    fn condvar_wait_with_second_lock_held_reports_it() {
        let a = parse(
            "fn f(&self) {\n    let extra = lock_recover(&self.extra);\n    let mut inner = lock_recover(&self.inner);\n    inner = wait_recover(&self.cv, inner);\n}\n",
        );
        let item = &a.items[0];
        assert_eq!(item.blocking[0].held, vec!["extra"]);
    }

    #[test]
    fn unsafe_sites_and_safety_comments() {
        let a = parse(
            "fn f() {\n    // SAFETY: fd is freshly returned and owned here\n    unsafe { claim(fd) };\n\n\n    unsafe { no_comment() };\n}\nunsafe impl Send for T {}\n",
        );
        let item = &a.items[0];
        assert_eq!(item.unsafes.len(), 2);
        assert!(item.unsafes[0].has_safety);
        assert!(!item.unsafes[1].has_safety);
        assert_eq!(a.file_unsafes.len(), 1);
        assert_eq!(a.file_unsafes[0].what, "unsafe impl");
    }

    #[test]
    fn unsafe_code_attribute_is_not_an_unsafe_site() {
        let a = parse("#[allow(unsafe_code)]\nfn f() { g(); }\n");
        assert!(a.items[0].unsafes.is_empty());
        assert!(a.file_unsafes.is_empty());
    }

    #[test]
    fn tags_attach_through_attributes() {
        let a = parse(
            "// awb-audit: hot\n#[inline]\nfn step() {}\n\nfn plain() {} // awb-audit: event-loop\n\n// awb-audit: hot\nlet x = 3;\n",
        );
        assert!(a.items[0].has_tag(TAG_HOT));
        assert!(a.items[1].has_tag(TAG_EVENT_LOOP));
        assert_eq!(a.tag_errors.len(), 1);
    }

    #[test]
    fn blocking_sites_are_detected() {
        let a = parse(
            "fn f(&self) {\n    std::thread::sleep(d);\n    let x = rx.recv();\n    handle.join();\n    rd.read_to_end(&mut buf);\n    rx.recv_timeout(d);\n}\n",
        );
        let item = &a.items[0];
        assert_eq!(item.blocking.len(), 4);
    }

    #[test]
    fn alloc_sites_are_detected_but_with_capacity_is_not() {
        let a = parse(
            "fn f() {\n    let v: Vec<u8> = Vec::new();\n    let w = Vec::with_capacity(8);\n    let s = x.iter().collect();\n    let t = y.clone();\n    let b = Box::new(z);\n}\n",
        );
        assert_eq!(a.items[0].allocs.len(), 4);
    }

    #[test]
    fn stdin_lock_is_not_a_mutex() {
        let a = parse("fn f() {\n    serve(stdin.lock());\n}\n");
        assert!(a.items[0].locks.is_empty());
    }

    #[test]
    fn collect_turbofish_is_an_alloc() {
        let a = parse("fn f() {\n    let v = it.collect::<Vec<_>>();\n}\n");
        assert_eq!(a.items[0].allocs.len(), 1);
    }
}
