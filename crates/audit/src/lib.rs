//! `awb-audit` — workspace-native static analysis for the `awb` crates.
//!
//! The LP certificates produced by the colgen solver are only as trustworthy
//! as the numerics underneath them: one `unwrap()` on a degenerate pivot or a
//! float `==` in a reduced-cost test silently voids the duality argument.
//! This crate tokenizes the workspace's Rust sources with a lightweight lexer
//! (no `syn` — the build environment vendors its dependencies) and enforces a
//! registry of domain-specific rules:
//!
//! | rule | meaning |
//! |------|---------|
//! | `no-panic-in-lib`  | no `unwrap`/`expect`/`panic!` family in `lp`/`core`/`sets`/`service`/`routing`/`estimate`/`sim`/`workloads` non-test code |
//! | `no-float-eq`      | no `==`/`!=` against float literals — tolerance helpers only |
//! | `determinism`      | no `HashMap`/`HashSet` in `core`/`sets`/`service`/`routing`/`estimate`/`sim`/`workloads` (iteration order leaks into output) |
//! | `lint-header`      | every crate root carries `#![forbid(unsafe_code)]` (+ `missing_docs` on lib roots) |
//! | `invalid-waiver`   | waivers must name known rules and carry a justification |
//!
//! A finding is silenced per-site with
//!
//! ```text
//! // awb-audit: allow(no-panic-in-lib) — pool index comes from enumerate() above
//! ```
//!
//! on the offending line (trailing) or the line before (own-line). Rules run
//! on *masked* source — comments, strings and `#[cfg(test)]` items never
//! fire — and files under `tests/`, `benches/` and `examples/` are skipped
//! entirely.
//!
//! The binary (`cargo run -p awb-audit`) prints human diagnostics by default,
//! `--json` for machines, and exits non-zero under `--deny` when any finding
//! survives; `crates/audit/tests/` additionally runs the auditor over the
//! live workspace so `cargo test` fails if a violation lands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lexer;
mod rules;

pub use lexer::{cfg_test_ranges, mask, Comment, Masked};
pub use rules::{classify, FileKind, Finding, Rule};

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Options controlling one audit run.
#[derive(Debug, Clone, Default)]
pub struct AuditOptions {
    /// Also report the advisory `strict-indexing` rule (never denied).
    pub strict_indexing: bool,
}

/// The outcome of auditing a file set.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Deny-able findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Advisory findings (`strict-indexing`), reported but never denied.
    pub advisories: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the audited set is free of deny-able findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable diagnostic listing.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.findings.iter().chain(&self.advisories) {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                f.file,
                f.line,
                f.col,
                f.rule.name(),
                f.message
            );
        }
        let _ = writeln!(
            out,
            "awb-audit: {} file(s), {} finding(s), {} advisory note(s)",
            self.files_scanned,
            self.findings.len(),
            self.advisories.len()
        );
        out
    }

    /// Renders the machine-readable JSON report (hand-rolled — this crate is
    /// deliberately dependency-free).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn row(f: &Finding) -> String {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                f.rule.name(),
                esc(&f.file),
                f.line,
                f.col,
                esc(&f.message)
            )
        }
        let findings: Vec<String> = self.findings.iter().map(row).collect();
        let advisories: Vec<String> = self.advisories.iter().map(row).collect();
        format!(
            "{{\"clean\":{},\"files_scanned\":{},\"findings\":[{}],\"advisories\":[{}]}}",
            self.is_clean(),
            self.files_scanned,
            findings.join(","),
            advisories.join(",")
        )
    }
}

/// Audits a single file's source text.
///
/// * `crate_name` — the crate directory name (`"lp"`, `"core"`, …; `"awb"`
///   for the workspace facade) used for rule scoping.
/// * `rel_path` — path under the crate directory (drives the `lint-header`
///   classification); the same string is echoed into findings.
pub fn audit_source(
    crate_name: &str,
    rel_path: &str,
    source: &str,
    options: &AuditOptions,
) -> Report {
    let masked = lexer::mask(source);
    let mut findings = Vec::new();
    let mut advisories = Vec::new();
    let waivers = rules::parse_waivers(rel_path, &masked, &mut findings);
    let waived = |rule: Rule, line: usize| {
        waivers
            .iter()
            .any(|w| w.target_line == line && w.rules.contains(&rule))
    };
    let file_waived = |rule: Rule| waivers.iter().any(|w| w.rules.contains(&rule));

    let test_ranges = lexer::cfg_test_ranges(&masked.text);
    let in_test = |line: usize| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    for (idx, line) in masked.text.lines().enumerate() {
        let lineno = idx + 1;
        if in_test(lineno) {
            continue;
        }
        let run = |rule: Rule, hits: Vec<(usize, String)>, sink: &mut Vec<Finding>| {
            if !rule.applies_to(crate_name) || waived(rule, lineno) {
                return;
            }
            for (col, message) in hits {
                sink.push(Finding {
                    rule,
                    file: rel_path.to_string(),
                    line: lineno,
                    col,
                    message,
                });
            }
        };
        run(Rule::NoPanicInLib, rules::scan_panics(line), &mut findings);
        run(Rule::NoFloatEq, rules::scan_float_eq(line), &mut findings);
        run(
            Rule::Determinism,
            rules::scan_hash_collections(line),
            &mut findings,
        );
        if options.strict_indexing {
            run(
                Rule::StrictIndexing,
                rules::scan_indexing(line),
                &mut advisories,
            );
        }
    }

    // R4: crate-root lint headers, checked on masked text so a doc-comment
    // mention cannot satisfy the requirement.
    let kind = rules::classify(rel_path);
    if kind != FileKind::Module && !file_waived(Rule::LintHeader) {
        let mut missing = Vec::new();
        if !masked.text.contains("#![forbid(unsafe_code)]") {
            missing.push("#![forbid(unsafe_code)]");
        }
        if kind == FileKind::LibRoot
            && !masked.text.contains("#![warn(missing_docs)]")
            && !masked.text.contains("#![deny(missing_docs)]")
        {
            missing.push("#![warn(missing_docs)]");
        }
        for attr in missing {
            findings.push(Finding {
                rule: Rule::LintHeader,
                file: rel_path.to_string(),
                line: 1,
                col: 1,
                message: format!("crate root is missing `{attr}`"),
            });
        }
    }

    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Report {
        findings,
        advisories,
        files_scanned: 1,
    }
}

/// Locates the workspace root at or above `start` (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Audits every workspace source file under `root`: `src/` of the facade
/// crate and of each `crates/*` member. `vendor/`, `target/`, `tests/`,
/// `benches/` and `examples/` are never scanned.
pub fn audit_workspace(root: &Path, options: &AuditOptions) -> io::Result<Report> {
    let mut report = Report::default();
    let mut units: Vec<(String, PathBuf)> = vec![("awb".to_string(), root.join("src"))];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for member in entries {
            let name = member
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            units.push((name, member.join("src")));
        }
    }
    for (crate_name, src_dir) in units {
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            let source = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            // The crate-relative path (e.g. `src/lib.rs`) drives header
            // classification; the workspace-relative one labels findings.
            let crate_rel = file
                .strip_prefix(src_dir.parent().unwrap_or(&src_dir))
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let mut one = audit_source(&crate_name, &crate_rel, &source, options);
            for f in one.findings.iter_mut().chain(one.advisories.iter_mut()) {
                f.file = rel.clone();
            }
            report.findings.extend(one.findings);
            report.advisories.extend(one.advisories);
            report.files_scanned += 1;
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if matches!(
                name.as_deref(),
                Some("tests") | Some("benches") | Some("examples") | Some("target")
            ) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
