//! `awb-audit` — workspace-native static analysis for the `awb` crates.
//!
//! The LP certificates produced by the colgen solver are only as trustworthy
//! as the numerics underneath them: one `unwrap()` on a degenerate pivot or a
//! float `==` in a reduced-cost test silently voids the duality argument.
//! This crate tokenizes the workspace's Rust sources with a lightweight lexer
//! (no `syn` — the build environment vendors its dependencies) and enforces a
//! registry of domain-specific rules:
//!
//! | rule | meaning |
//! |------|---------|
//! | `no-panic-in-lib`  | no `unwrap`/`expect`/`panic!` family in `lp`/`core`/`sets`/`service`/`routing`/`estimate`/`sim`/`workloads` non-test code |
//! | `no-float-eq`      | no `==`/`!=` against float literals — tolerance helpers only |
//! | `determinism`      | no `HashMap`/`HashSet` in `core`/`sets`/`service`/`routing`/`estimate`/`sim`/`workloads` (iteration order leaks into output) |
//! | `lint-header`      | every crate root carries `#![forbid(unsafe_code)]` (+ `missing_docs` on lib roots) |
//! | `invalid-waiver`   | waivers must name known rules and carry a justification |
//!
//! A finding is silenced per-site with
//!
//! ```text
//! // awb-audit: allow(no-panic-in-lib) — pool index comes from enumerate() above
//! ```
//!
//! on the offending line (trailing) or the line before (own-line). Rules run
//! on *masked* source — comments, strings and `#[cfg(test)]` items never
//! fire — and files under `tests/`, `benches/` and `examples/` are skipped
//! entirely.
//!
//! The binary (`cargo run -p awb-audit`) prints human diagnostics by default,
//! `--json` for machines, and exits non-zero under `--deny` when any finding
//! survives; `crates/audit/tests/` additionally runs the auditor over the
//! live workspace so `cargo test` fails if a violation lands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod lexer;
mod parse;
mod rules;

pub use lexer::{cfg_test_ranges, mask, Comment, Masked};
pub use rules::{classify, FileKind, Finding, Rule};

/// The version of the JSON report layout. Bump when a field changes meaning
/// so CI trend tooling can detect incompatible reports.
pub const SCHEMA_VERSION: u32 = 2;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Options controlling one audit run.
#[derive(Debug, Clone, Default)]
pub struct AuditOptions {
    /// Also report the advisory `strict-indexing` rule (never denied).
    pub strict_indexing: bool,
}

/// One source file handed to [`audit_units`].
#[derive(Debug, Clone)]
pub struct SourceUnit {
    /// Crate directory name (`"lp"`, `"core"`, …; `"awb"` for the facade).
    pub crate_name: String,
    /// Path echoed into findings; `lint-header` classification and the
    /// unsafe allowlist match on its suffix, so both crate-relative
    /// (`src/lib.rs`) and workspace-relative (`crates/lp/src/lib.rs`)
    /// spellings work.
    pub rel_path: String,
    /// The file's source text.
    pub source: String,
}

/// The outcome of auditing a file set.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Deny-able findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Advisory findings (`strict-indexing`), reported but never denied.
    pub advisories: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the audited set is free of deny-able findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable diagnostic listing.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.findings.iter().chain(&self.advisories) {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                f.file,
                f.line,
                f.col,
                f.rule.name(),
                f.message
            );
        }
        let _ = writeln!(
            out,
            "awb-audit: {} file(s), {} finding(s), {} advisory note(s)",
            self.files_scanned,
            self.findings.len(),
            self.advisories.len()
        );
        out
    }

    /// Renders the machine-readable JSON report (hand-rolled — this crate is
    /// deliberately dependency-free).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn row(f: &Finding) -> String {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                f.rule.name(),
                esc(&f.file),
                f.line,
                f.col,
                esc(&f.message)
            )
        }
        let findings: Vec<String> = self.findings.iter().map(row).collect();
        let advisories: Vec<String> = self.advisories.iter().map(row).collect();
        let mut counts = String::new();
        let mut all_rules: Vec<Rule> = Rule::all().to_vec();
        all_rules.push(Rule::StrictIndexing);
        for (i, rule) in all_rules.iter().enumerate() {
            let n = self
                .findings
                .iter()
                .chain(&self.advisories)
                .filter(|f| f.rule == *rule)
                .count();
            if i > 0 {
                counts.push(',');
            }
            let _ = write!(counts, "\"{}\":{}", rule.name(), n);
        }
        format!(
            "{{\"schema_version\":{},\"clean\":{},\"files_scanned\":{},\"rule_counts\":{{{}}},\"findings\":[{}],\"advisories\":[{}]}}",
            SCHEMA_VERSION,
            self.is_clean(),
            self.files_scanned,
            counts,
            findings.join(","),
            advisories.join(",")
        )
    }

    /// Removes every finding matched by a baseline entry (`rule` + `file` +
    /// `message`; line numbers drift and are deliberately ignored), multiset
    /// style — N baseline entries absorb at most N findings. Returns the
    /// number of findings suppressed.
    pub fn apply_baseline(&mut self, baseline: &[BaselineEntry]) -> usize {
        let mut budget: std::collections::BTreeMap<(String, String, String), usize> =
            std::collections::BTreeMap::new();
        for e in baseline {
            *budget
                .entry((e.rule.clone(), e.file.clone(), e.message.clone()))
                .or_insert(0) += 1;
        }
        let before = self.findings.len();
        self.findings.retain(|f| {
            let key = (f.rule.name().to_string(), f.file.clone(), f.message.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    false
                }
                _ => true,
            }
        });
        before - self.findings.len()
    }
}

/// One recorded finding from a `--write-baseline` report, used by the
/// `--baseline` ratchet to fail only on *new* findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule name as serialized (`"lock-order"`, …).
    pub rule: String,
    /// Workspace-relative path as serialized.
    pub file: String,
    /// Finding message as serialized.
    pub message: String,
}

/// Extracts the baseline entries from a previously written JSON report.
/// The reader only understands the reports this crate writes (objects in a
/// top-level `"findings"` array) — it is not a general JSON parser; the
/// crate stays dependency-free.
pub fn parse_baseline(json: &str) -> Vec<BaselineEntry> {
    let Some(start) = json.find("\"findings\":[") else {
        return Vec::new();
    };
    let body = &json[start + "\"findings\":[".len()..];
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = None;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = obj_start.take() {
                        let obj = &body[s..=i];
                        if let (Some(rule), Some(file), Some(message)) = (
                            json_str_value(obj, "rule"),
                            json_str_value(obj, "file"),
                            json_str_value(obj, "message"),
                        ) {
                            entries.push(BaselineEntry {
                                rule,
                                file,
                                message,
                            });
                        }
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    entries
}

/// Extracts the string value of `"key":"…"` from a flat JSON object,
/// reversing the escapes [`Report::to_json`] writes.
fn json_str_value(obj: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = obj.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = obj[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Audits a single file's source text — the graph rules run over the file
/// in isolation (fixtures and tests use this; the workspace entry point is
/// [`audit_units`]).
pub fn audit_source(
    crate_name: &str,
    rel_path: &str,
    source: &str,
    options: &AuditOptions,
) -> Report {
    audit_units(
        &[SourceUnit {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            source: source.to_string(),
        }],
        options,
    )
}

/// Per-file scan results that feed the workspace-level graph rules.
struct UnitScan {
    findings: Vec<Finding>,
    advisories: Vec<Finding>,
    nodes: Vec<graph::Node>,
    waivers: Vec<rules::Waiver>,
    rel_path: String,
}

/// Audits a set of source files as one workspace: per-file rules (R1–R5)
/// run on each unit, then the call graph is assembled across all of them
/// and the interprocedural rules (R6–R8) run on top.
pub fn audit_units(units: &[SourceUnit], options: &AuditOptions) -> Report {
    let mut scans: Vec<UnitScan> = units.iter().map(|u| scan_unit(u, options)).collect();

    let mut nodes = Vec::new();
    for scan in &mut scans {
        nodes.append(&mut scan.nodes);
    }
    let graph_report = graph::analyze_graph(nodes);

    let mut report = Report::default();
    for scan in &mut scans {
        report.findings.append(&mut scan.findings);
        report.advisories.append(&mut scan.advisories);
        report.files_scanned += 1;
    }
    let waived = |f: &Finding| {
        scans.iter().any(|s| {
            s.rel_path == f.file
                && s.waivers
                    .iter()
                    .any(|w| w.target_line == f.line && w.rules.contains(&f.rule))
        })
    };
    for f in graph_report.findings {
        if !waived(&f) {
            report.findings.push(f);
        }
    }
    for a in graph_report.advisories {
        if !waived(&a) {
            report.advisories.push(a);
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    report
        .advisories
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    report.findings.dedup();
    report
}

/// Runs the per-file rules over one unit and extracts its graph nodes.
fn scan_unit(unit: &SourceUnit, options: &AuditOptions) -> UnitScan {
    let crate_name = unit.crate_name.as_str();
    let rel_path = unit.rel_path.as_str();
    let masked = lexer::mask(&unit.source);
    let mut findings = Vec::new();
    let mut advisories = Vec::new();
    let waivers = rules::parse_waivers(rel_path, &masked, &mut findings);
    let waived = |rule: Rule, line: usize, waivers: &[rules::Waiver]| {
        waivers
            .iter()
            .any(|w| w.target_line == line && w.rules.contains(&rule))
    };
    let file_waived = |rule: Rule| waivers.iter().any(|w| w.rules.contains(&rule));

    let test_ranges = lexer::cfg_test_ranges(&masked.text);
    let in_test = |line: usize| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    for (idx, line) in masked.text.lines().enumerate() {
        let lineno = idx + 1;
        if in_test(lineno) {
            continue;
        }
        let run = |rule: Rule, hits: Vec<(usize, String)>, sink: &mut Vec<Finding>| {
            if !rule.applies_to(crate_name) || waived(rule, lineno, &waivers) {
                return;
            }
            for (col, message) in hits {
                sink.push(Finding {
                    rule,
                    file: rel_path.to_string(),
                    line: lineno,
                    col,
                    message,
                });
            }
        };
        run(Rule::NoPanicInLib, rules::scan_panics(line), &mut findings);
        run(Rule::NoFloatEq, rules::scan_float_eq(line), &mut findings);
        run(
            Rule::Determinism,
            rules::scan_hash_collections(line),
            &mut findings,
        );
        if options.strict_indexing {
            run(
                Rule::StrictIndexing,
                rules::scan_indexing(line),
                &mut advisories,
            );
        }
    }

    // R4: crate-root lint headers, checked on masked text so a doc-comment
    // mention cannot satisfy the requirement.
    let kind = rules::classify(rel_path);
    if kind != FileKind::Module && !file_waived(Rule::LintHeader) {
        let mut missing = Vec::new();
        if !masked.text.contains("#![forbid(unsafe_code)]") {
            missing.push("#![forbid(unsafe_code)]");
        }
        if kind == FileKind::LibRoot
            && !masked.text.contains("#![warn(missing_docs)]")
            && !masked.text.contains("#![deny(missing_docs)]")
        {
            missing.push("#![warn(missing_docs)]");
        }
        for attr in missing {
            findings.push(Finding {
                rule: Rule::LintHeader,
                file: rel_path.to_string(),
                line: 1,
                col: 1,
                message: format!("crate root is missing `{attr}`"),
            });
        }
    }

    // Item parse: R5 unsafe-confinement, tag validation, and the graph
    // nodes (test items never feed the graph).
    let analysis = parse::analyze(&masked);
    for (line, msg) in &analysis.tag_errors {
        if !in_test(*line) {
            findings.push(Finding {
                rule: Rule::InvalidWaiver,
                file: rel_path.to_string(),
                line: *line,
                col: 1,
                message: msg.clone(),
            });
        }
    }
    let allowlisted = rules::unsafe_allowlisted(crate_name, rel_path);
    let unsafe_sites = analysis
        .items
        .iter()
        .flat_map(|it| it.unsafes.iter())
        .chain(analysis.file_unsafes.iter());
    for site in unsafe_sites {
        if in_test(site.line) || waived(Rule::UnsafeConfinement, site.line, &waivers) {
            continue;
        }
        if !allowlisted {
            findings.push(Finding {
                rule: Rule::UnsafeConfinement,
                file: rel_path.to_string(),
                line: site.line,
                col: 1,
                message: format!(
                    "{} outside the allowlisted files (only reactor/src/sys.rs may hold unsafe code)",
                    site.what
                ),
            });
        }
        if !site.has_safety {
            findings.push(Finding {
                rule: Rule::UnsafeConfinement,
                file: rel_path.to_string(),
                line: site.line,
                col: 1,
                message: format!("{} without an adjacent `// SAFETY:` comment", site.what),
            });
        }
    }
    let nodes = analysis
        .items
        .into_iter()
        .filter(|it| !in_test(it.line))
        .map(|item| graph::Node {
            crate_name: crate_name.to_string(),
            file: rel_path.to_string(),
            item,
        })
        .collect();

    UnitScan {
        findings,
        advisories,
        nodes,
        waivers,
        rel_path: rel_path.to_string(),
    }
}

/// Locates the workspace root at or above `start` (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Audits every workspace source file under `root`: `src/` of the facade
/// crate and of each `crates/*` member. `vendor/`, `target/`, `tests/`,
/// `benches/` and `examples/` are never scanned.
pub fn audit_workspace(root: &Path, options: &AuditOptions) -> io::Result<Report> {
    let mut units: Vec<(String, PathBuf)> = vec![("awb".to_string(), root.join("src"))];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for member in entries {
            let name = member
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            units.push((name, member.join("src")));
        }
    }
    let mut sources: Vec<SourceUnit> = Vec::new();
    for (crate_name, src_dir) in units {
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            let source = fs::read_to_string(&file)?;
            // Findings carry the workspace-relative path; `lint-header`
            // classification and the unsafe allowlist match on its suffix.
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            sources.push(SourceUnit {
                crate_name: crate_name.clone(),
                rel_path: rel,
                source,
            });
        }
    }
    Ok(audit_units(&sources, options))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if matches!(
                name.as_deref(),
                Some("tests") | Some("benches") | Some("examples") | Some("target")
            ) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
