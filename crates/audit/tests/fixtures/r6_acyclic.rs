//! Fixture: R6 consistent lock order — every path acquires alpha before
//! beta, and `sequential` releases alpha with `drop` before taking beta.

pub struct Pair {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
}

impl Pair {
    pub fn nested(&self) -> u32 {
        let a = lock_recover(&self.alpha);
        let b = lock_recover(&self.beta);
        *a + *b
    }

    pub fn sequential(&self) -> u32 {
        let a = lock_recover(&self.alpha);
        let total = *a;
        drop(a);
        let b = lock_recover(&self.beta);
        total + *b
    }
}
