//! Invalid-waiver fixture: unknown rules and missing justifications are
//! themselves findings, and the waiver then does not silence anything.

pub fn unknown_rule(v: Option<u32>) -> u32 {
    // awb-audit: allow(no-such-rule) — the rule name is not in the registry
    v.unwrap_or(0)
}

pub fn missing_justification(v: Option<u32>) -> u32 {
    // awb-audit: allow(no-panic-in-lib)
    v.unwrap()
}
