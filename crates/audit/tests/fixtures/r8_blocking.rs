//! Fixture: R8 reactor blocking calls — a direct sleep on the tick path, a
//! transitive channel `recv`, an unreached cold sleep and a waived site.

pub struct Loop {
    rx: std::sync::mpsc::Receiver<u32>,
}

impl Loop {
    // awb-audit: event-loop
    pub fn tick(&mut self) -> u32 {
        let burst = self.pump();
        std::thread::sleep(std::time::Duration::from_millis(1));
        burst
    }

    fn pump(&self) -> u32 {
        self.rx.recv().unwrap_or(0)
    }

    fn cold_path(&self) {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // awb-audit: event-loop
    pub fn tick_waived(&self) {
        // awb-audit: allow(reactor-blocking) — fixture: startup-only wait
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}
