//! Fixture: R5 unsafe confinement — SAFETY-covered, uncovered, waived and
//! test-only sites. Audited once outside the allowlist and once as
//! `reactor/src/sys.rs` to exercise the allowlist dimension.

pub fn covered(p: *const u32) -> u32 {
    // SAFETY: fixture — the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

pub fn covered_multiline(p: *const u32) -> u32 {
    // The justification may span several comment lines as long as the
    // block is contiguous and mentions SAFETY: fixture — `p` is valid.
    unsafe { *p }
}

pub fn uncovered(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn waived(p: *const u32) -> u32 {
    // awb-audit: allow(unsafe-confinement) — fixture: both halves silenced
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    pub fn test_only(p: *const u32) -> u32 {
        unsafe { *p }
    }
}
