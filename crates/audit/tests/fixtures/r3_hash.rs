//! R3 fixture: `HashMap`/`HashSet` in determinism-scoped crates is flagged;
//! ordered collections are not.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn hits() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    m.len() + s.len()
}

pub fn misses() -> usize {
    let m: std::collections::BTreeMap<u32, u32> = Default::default();
    let s: std::collections::BTreeSet<u32> = Default::default();
    m.len() + s.len()
}
