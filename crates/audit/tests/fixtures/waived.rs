//! Waiver fixture: own-line and trailing waivers with justifications
//! silence exactly their target line and rule.

pub fn own_line_waiver(v: Option<u32>) -> u32 {
    // awb-audit: allow(no-panic-in-lib) — fixture: value is always present here
    v.unwrap()
}

pub fn trailing_waiver(x: f64) -> bool {
    x == 0.0 // awb-audit: allow(no-float-eq) — fixture: exact sentinel comparison
}

pub fn waiver_is_rule_scoped(v: Option<u32>) -> u32 {
    // A waiver for one rule must not silence another on the same line.
    // awb-audit: allow(no-float-eq) — fixture: wrong rule, unwrap still fires
    v.unwrap()
}
