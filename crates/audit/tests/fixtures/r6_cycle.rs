//! Fixture: R6 lock-order cycle — `forward` acquires alpha→beta while
//! `backward` acquires beta→alpha, and `sleepy` blocks with alpha held.

pub struct Pair {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = lock_recover(&self.alpha);
        let b = lock_recover(&self.beta);
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = lock_recover(&self.beta);
        let a = lock_recover(&self.alpha);
        *a + *b
    }

    pub fn sleepy(&self) {
        let _a = lock_recover(&self.alpha);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
