//! Fixture: R7 hot-path allocation — a direct allocation in a tagged
//! function, a transitive one in its callee, an unreached cold allocation
//! and a waived site.

// awb-audit: hot
pub fn hot_entry(n: usize) -> usize {
    let label = format!("n={n}");
    helper(n) + label.len()
}

fn helper(n: usize) -> usize {
    let items: Vec<usize> = (0..n).collect();
    items.len()
}

fn cold(n: usize) -> usize {
    let items: Vec<usize> = (0..n).map(|i| i + 1).collect();
    items.len()
}

// awb-audit: hot
pub fn hot_waived(n: usize) -> usize {
    // awb-audit: allow(hot-path-alloc) — fixture: amortized one-time setup
    let seed = vec![0u8; n];
    seed.len()
}
