//! R4 fixture: a crate root (this file is audited as `src/lib.rs`) without
//! `#![forbid(unsafe_code)]` or a `missing_docs` lint must be flagged twice.

pub fn nothing_else_wrong() {}
