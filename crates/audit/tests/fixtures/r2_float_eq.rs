//! R2 fixture: `==`/`!=` against float literals is flagged; integer
//! comparisons, tuple-field access, and comments/strings are not.

pub fn hits(x: f64, y: f32) -> bool {
    let a = x == 0.0;
    let b = x != 1.5;
    let c = 2.0 == x;
    let d = y != 3.0f32;
    a || b || c || d
}

pub fn misses(n: usize, w: &[(f64, f64)]) -> bool {
    // Integer equality is fine, and `w[0].0` is a tuple field, not a float
    // literal adjacent to the operator.
    let a = n == 0;
    let b = w[0].0 != w[1].0;
    // A comment mentioning x == 0.0 must not fire, nor a string: "x == 0.0".
    let _s = "x == 0.0";
    a || b
}
