//! R1 fixture: panic-family calls in library code must be flagged, while
//! the same constructs inside `#[cfg(test)]` must not.

pub fn hits(v: Option<u32>, r: Result<u32, u32>) -> u32 {
    let a = v.unwrap();
    let b = r.expect("boom");
    if a + b == 0 {
        panic!("zero");
    }
    match a {
        0 => unreachable!(),
        1 => todo!(),
        2 => unimplemented!(),
        n => n,
    }
}

pub fn misses(v: Option<u32>) -> u32 {
    // unwrap_or / unwrap_or_else / unwrap_or_default are total, not panics.
    v.unwrap_or(0);
    v.unwrap_or_else(|| 1);
    v.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u32, u32> = Ok(2);
        r.expect("fine in tests");
    }
}
