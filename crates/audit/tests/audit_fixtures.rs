//! Fixture-driven tests for the audit rules: hit, miss, and waiver cases per
//! rule, the CLI `--deny` exit codes, and a self-check that the live
//! workspace stays clean.

use awb_audit::{audit_source, audit_workspace, AuditOptions, Rule};
use std::path::{Path, PathBuf};

fn audit_fixture(crate_name: &str, rel_path: &str, source: &str) -> Vec<(Rule, usize)> {
    audit_source(crate_name, rel_path, source, &AuditOptions::default())
        .findings
        .iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

fn line_of(source: &str, needle: &str) -> usize {
    source
        .lines()
        .position(|l| l.contains(needle))
        .map(|i| i + 1)
        .unwrap_or_else(|| panic!("fixture does not contain {needle:?}"))
}

#[test]
fn r1_flags_panic_family_outside_tests_only() {
    let src = include_str!("fixtures/r1_panic.rs");
    let found = audit_fixture("lp", "src/panic.rs", src);
    let r1: Vec<usize> = found
        .iter()
        .filter(|(r, _)| *r == Rule::NoPanicInLib)
        .map(|&(_, l)| l)
        .collect();
    for needle in [
        "v.unwrap();",
        "r.expect(\"boom\");",
        "panic!(\"zero\");",
        "unreachable!()",
        "todo!()",
        "unimplemented!()",
    ] {
        assert!(
            r1.contains(&line_of(src, needle)),
            "R1 missed {needle:?}; found {found:?}"
        );
    }
    // Total-function forms and #[cfg(test)] code never fire.
    for needle in ["unwrap_or(0)", "unwrap_or_else(|| 1)", "v.unwrap(), 1"] {
        assert!(
            !r1.contains(&line_of(src, needle)),
            "R1 falsely flagged {needle:?}"
        );
    }
    assert_eq!(r1.len(), 6, "unexpected extra R1 findings: {found:?}");
}

#[test]
fn r2_flags_float_literal_comparisons_only() {
    let src = include_str!("fixtures/r2_float_eq.rs");
    let found = audit_fixture("core", "src/float.rs", src);
    let r2: Vec<usize> = found
        .iter()
        .filter(|(r, _)| *r == Rule::NoFloatEq)
        .map(|&(_, l)| l)
        .collect();
    for needle in ["x == 0.0;", "x != 1.5;", "2.0 == x;", "y != 3.0f32;"] {
        assert!(
            r2.contains(&line_of(src, needle)),
            "R2 missed {needle:?}; found {found:?}"
        );
    }
    for needle in ["n == 0;", "w[0].0 != w[1].0;", "\"x == 0.0\""] {
        assert!(
            !r2.contains(&line_of(src, needle)),
            "R2 falsely flagged {needle:?}"
        );
    }
    assert_eq!(r2.len(), 4);
}

#[test]
fn r3_flags_hash_collections_in_scoped_crates_only() {
    let src = include_str!("fixtures/r3_hash.rs");
    let found = audit_fixture("service", "src/state.rs", src);
    let r3 = found
        .iter()
        .filter(|(r, _)| *r == Rule::Determinism)
        .count();
    // Two imports + two constructor mentions, with the BTree variants clean.
    assert_eq!(r3, 6, "findings: {found:?}");

    // The same file in a crate outside R3's scope (e.g. `bench`) is clean.
    let outside = audit_fixture("bench", "src/state.rs", src);
    assert!(
        outside.iter().all(|(r, _)| *r != Rule::Determinism),
        "R3 fired outside its crate scope: {outside:?}"
    );
}

#[test]
fn r4_flags_missing_crate_root_headers() {
    let src = include_str!("fixtures/r4_header.rs");
    // As a lib root both attributes are required.
    let found = audit_fixture("core", "src/lib.rs", src);
    let r4 = found.iter().filter(|(r, _)| *r == Rule::LintHeader).count();
    assert_eq!(r4, 2, "lib root should miss both attributes: {found:?}");

    // As a bin root only `forbid(unsafe_code)` is required.
    let found = audit_fixture("cli", "src/main.rs", src);
    let r4 = found.iter().filter(|(r, _)| *r == Rule::LintHeader).count();
    assert_eq!(r4, 1, "bin root should miss only forbid: {found:?}");

    // As an ordinary module no header is required.
    let found = audit_fixture("core", "src/helpers.rs", src);
    assert!(found.iter().all(|(r, _)| *r != Rule::LintHeader));
}

#[test]
fn waivers_silence_their_target_line_and_rule_only() {
    let src = include_str!("fixtures/waived.rs");
    let found = audit_fixture("lp", "src/waived.rs", src);
    // The own-line and trailing waivers silence their sites; the wrong-rule
    // waiver leaves the unwrap in `waiver_is_rule_scoped` flagged.
    assert_eq!(
        found,
        vec![(
            Rule::NoPanicInLib,
            line_of(src, "fixture: wrong rule, unwrap still fires") + 1
        )],
        "expected exactly the wrong-rule site to survive"
    );
}

#[test]
fn invalid_waivers_are_findings_and_do_not_silence() {
    let src = include_str!("fixtures/bad_waiver.rs");
    let found = audit_fixture("lp", "src/bad_waiver.rs", src);
    let invalid = found
        .iter()
        .filter(|(r, _)| *r == Rule::InvalidWaiver)
        .count();
    assert_eq!(
        invalid, 2,
        "unknown rule + missing justification: {found:?}"
    );
    // The unjustified waiver must not have silenced the unwrap under it.
    assert!(
        found
            .iter()
            .any(|&(r, l)| r == Rule::NoPanicInLib && l == line_of(src, "v.unwrap()")),
        "unjustified waiver still silenced its target: {found:?}"
    );
}

#[test]
fn r5_confines_unsafe_to_the_allowlist_and_requires_safety_comments() {
    let src = include_str!("fixtures/r5_unsafe.rs");
    // Outside the allowlist: every live site is out of bounds, and the one
    // without a SAFETY comment is flagged twice. The waived and #[cfg(test)]
    // sites stay silent.
    let found = audit_fixture("lp", "src/unsafe_mod.rs", src);
    let r5: Vec<usize> = found
        .iter()
        .filter(|(r, _)| *r == Rule::UnsafeConfinement)
        .map(|&(_, l)| l)
        .collect();
    let covered = line_of(src, "// SAFETY: fixture — the caller") + 1;
    let multiline = line_of(src, "block is contiguous and mentions SAFETY") + 1;
    let uncovered = line_of(src, "pub fn uncovered") + 1;
    let waived = line_of(src, "allow(unsafe-confinement)") + 1;
    assert_eq!(r5.iter().filter(|&&l| l == covered).count(), 1);
    assert_eq!(r5.iter().filter(|&&l| l == multiline).count(), 1);
    assert_eq!(r5.iter().filter(|&&l| l == uncovered).count(), 2);
    assert!(!r5.contains(&waived), "waiver ignored: {found:?}");
    assert_eq!(r5.len(), 4, "unexpected extra R5 findings: {found:?}");

    // The same file as the allowlisted reactor/src/sys.rs: only the missing
    // SAFETY comment fires.
    let found = audit_fixture("reactor", "src/sys.rs", src);
    let r5: Vec<usize> = found
        .iter()
        .filter(|(r, _)| *r == Rule::UnsafeConfinement)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(r5, vec![uncovered], "allowlist not honoured: {found:?}");
}

#[test]
fn r6_flags_the_seeded_two_lock_cycle_and_blocking_under_lock() {
    let src = include_str!("fixtures/r6_cycle.rs");
    let report = awb_audit::audit_source("lp", "src/cycle.rs", src, &AuditOptions::default());
    let cycles: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::LockOrder && f.message.contains("lock-order cycle"))
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(
        cycles.len(),
        1,
        "the seeded alpha/beta inversion must be one cycle: {report:?}"
    );
    assert!(
        cycles[0].contains("lp::alpha") && cycles[0].contains("lp::beta"),
        "cycle names the lock classes: {}",
        cycles[0]
    );
    // `sleepy` parks the thread with alpha held — an independent deny.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == Rule::LockOrder && f.message.contains("while holding")),
        "blocking under a held lock not flagged: {report:?}"
    );
    // Both ordered pairs are surfaced as advisory documentation.
    let pairs = report
        .advisories
        .iter()
        .filter(|f| f.rule == Rule::LockOrder)
        .count();
    assert_eq!(pairs, 2, "expected both ordered pairs: {report:?}");
}

#[test]
fn r6_accepts_consistent_order_and_drop_released_guards() {
    let src = include_str!("fixtures/r6_acyclic.rs");
    let report = awb_audit::audit_source("lp", "src/acyclic.rs", src, &AuditOptions::default());
    assert!(
        report.findings.is_empty(),
        "acyclic order must produce no findings: {report:?}"
    );
    // Only `nested` holds alpha across the beta acquisition; `sequential`
    // released alpha with drop() first, so exactly one pair is documented.
    let pairs = report
        .advisories
        .iter()
        .filter(|f| f.rule == Rule::LockOrder)
        .count();
    assert_eq!(pairs, 1, "drop() release not modelled: {report:?}");
}

#[test]
fn r7_flags_direct_and_transitive_hot_path_allocations_only() {
    let src = include_str!("fixtures/r7_hot.rs");
    let report = awb_audit::audit_source("lp", "src/hot.rs", src, &AuditOptions::default());
    let r7: Vec<(usize, &str)> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::HotPathAlloc)
        .map(|f| (f.line, f.message.as_str()))
        .collect();
    let direct = line_of(src, "format!");
    let transitive = line_of(src, "let items: Vec<usize> = (0..n).collect();");
    let cold = line_of(src, "map(|i| i + 1)");
    let waived = line_of(src, "vec![0u8; n]");
    assert!(r7.iter().any(|&(l, _)| l == direct), "direct: {report:?}");
    let via_helper = r7.iter().find(|&&(l, _)| l == transitive);
    assert!(
        via_helper.is_some_and(|(_, m)| m.contains("helper")),
        "transitive finding must carry the call chain: {report:?}"
    );
    assert!(!r7.iter().any(|&(l, _)| l == cold), "cold fn reached?");
    assert!(!r7.iter().any(|&(l, _)| l == waived), "waiver ignored");
    assert_eq!(r7.len(), 2, "unexpected extra R7 findings: {report:?}");
}

#[test]
fn r8_flags_blocking_calls_reachable_from_the_event_loop_only() {
    let src = include_str!("fixtures/r8_blocking.rs");
    let report = awb_audit::audit_source("lp", "src/r8.rs", src, &AuditOptions::default());
    let r8: Vec<(usize, &str)> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::ReactorBlocking)
        .map(|f| (f.line, f.message.as_str()))
        .collect();
    let direct = line_of(src, "from_millis(1)");
    let transitive = line_of(src, ".recv()");
    let cold = line_of(src, "from_millis(5)");
    let waived = line_of(src, "from_millis(2)");
    assert!(r8.iter().any(|&(l, _)| l == direct), "direct: {report:?}");
    let via_pump = r8.iter().find(|&&(l, _)| l == transitive);
    assert!(
        via_pump.is_some_and(|(_, m)| m.contains("pump")),
        "transitive finding must carry the call chain: {report:?}"
    );
    assert!(!r8.iter().any(|&(l, _)| l == cold), "cold path reached?");
    assert!(!r8.iter().any(|&(l, _)| l == waived), "waiver ignored");
    assert_eq!(r8.len(), 2, "unexpected extra R8 findings: {report:?}");
}

/// Builds a throwaway mini-workspace seeded with one violation per rule and
/// returns its root.
fn seed_violation_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("awb-audit-fixture-{tag}-{}", std::process::id()));
    let src = root.join("crates").join("core").join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
    // lib.rs with no lint header (R4), an unwrap (R1), a float == (R2), and
    // a HashMap (R3).
    std::fs::write(
        src.join("lib.rs"),
        "use std::collections::HashMap;\n\
         pub fn f(v: Option<f64>) -> bool {\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             v.unwrap() == 0.0 && m.is_empty()\n\
         }\n",
    )
    .unwrap();
    root
}

#[test]
fn deny_exits_nonzero_on_each_seeded_rule_violation() {
    let root = seed_violation_workspace("deny");
    let report = audit_workspace(&root, &AuditOptions::default()).unwrap();
    for rule in [
        Rule::NoPanicInLib,
        Rule::NoFloatEq,
        Rule::Determinism,
        Rule::LintHeader,
    ] {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "seeded workspace should violate {}: {report:?}",
            rule.name()
        );
    }

    // The actual binary must refuse it under --deny...
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_awb-audit"))
        .arg("--deny")
        .arg(&root)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1), "--deny must exit 1 on violations");
    // ...and accept it without --deny (report-only mode).
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_awb-audit"))
        .arg(&root)
        .stdout(std::process::Stdio::null())
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "report-only mode must exit 0");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn baseline_ratchet_suppresses_recorded_findings_and_catches_new_ones() {
    let root = seed_violation_workspace("baseline");
    let baseline = root.join("audit-baseline.json");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_awb-audit"))
        .arg("--write-baseline")
        .arg(&baseline)
        .arg(&root)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "--write-baseline must exit 0");
    assert!(baseline.exists());

    // Under the recorded baseline the same tree passes --deny.
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_awb-audit"))
        .arg("--deny")
        .arg("--baseline")
        .arg(&baseline)
        .arg(&root)
        .stdout(std::process::Stdio::null())
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "baselined findings must not deny");

    // A brand-new violation is *not* covered by the baseline.
    std::fs::write(
        root.join("crates").join("core").join("src").join("more.rs"),
        "pub fn g(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    )
    .unwrap();
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_awb-audit"))
        .arg("--deny")
        .arg("--baseline")
        .arg(&baseline)
        .arg(&root)
        .stdout(std::process::Stdio::null())
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1), "new findings must still deny");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn json_report_is_valid_and_stable_across_runs() {
    let root = seed_violation_workspace("json");
    let a = audit_workspace(&root, &AuditOptions::default())
        .unwrap()
        .to_json();
    let b = audit_workspace(&root, &AuditOptions::default())
        .unwrap()
        .to_json();
    assert_eq!(a, b, "audit output must be deterministic");
    let parsed = serde::json::parse(&a).expect("report is valid JSON");
    assert_eq!(
        parsed.get("clean").and_then(|v| v.as_bool()),
        Some(false),
        "seeded workspace must report clean=false"
    );
    assert!(parsed
        .get("findings")
        .and_then(|v| v.as_array())
        .is_some_and(|f| !f.is_empty()));
    assert_eq!(
        parsed.get("schema_version").and_then(|v| v.as_u64()),
        Some(u64::from(awb_audit::SCHEMA_VERSION)),
        "report must carry its schema version"
    );
    // Per-rule counts cover every registered rule, including the graph
    // rules that the seeded workspace does not violate.
    let counts = parsed
        .get("rule_counts")
        .and_then(|v| v.as_object())
        .expect("rule_counts object");
    for rule in Rule::all() {
        assert!(
            counts.contains_key(rule.name()),
            "rule_counts missing {}",
            rule.name()
        );
    }
    assert!(
        counts
            .get("no-panic-in-lib")
            .and_then(|v| v.as_u64())
            .is_some_and(|n| n >= 1),
        "seeded unwrap must be counted"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/audit sits two levels under the workspace root");
    let mut report = audit_workspace(root, &AuditOptions::default()).unwrap();
    // The committed ratchet baseline absorbs the accepted delta-recompile
    // allocation findings, mirroring the CI gate
    // (`--baseline audit-baseline.json --deny`): only *new* findings fail.
    let baseline = std::fs::read_to_string(root.join("audit-baseline.json")).unwrap_or_default();
    report.apply_baseline(&awb_audit::parse_baseline(&baseline));
    assert!(
        report.is_clean(),
        "the workspace has unwaived audit findings beyond the ratchet baseline:\n{}",
        report.render_human()
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
}
