//! The paper's two hand-constructed micro-topologies (Fig. 1).

use awb_core::{Flow, Schedule};
use awb_net::{DeclarativeModel, LinkId, Path, Topology};
use awb_phy::Rate;

/// **Scenario I** (paper §1, Fig. 1): three links where `L1` and `L2`
/// neither interfere with nor hear each other, while `L3` interferes with
/// and hears both. Background traffic occupies time share `λ` on `L1` and on
/// `L2`; the question is the available bandwidth of the one-hop path over
/// `L3`.
///
/// Under optimal scheduling `L1` and `L2` overlap completely and `L3` gets
/// `1 − λ` of the channel; a carrier-sensing estimate against a
/// non-overlapping background schedule sees the channel busy `2λ` of the
/// time and admits only `1 − 2λ`.
///
/// ```
/// use awb_workloads::ScenarioOne;
/// let s1 = ScenarioOne::new();
/// assert_eq!(s1.background(0.3).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioOne {
    model: DeclarativeModel,
    links: [LinkId; 3],
    rate: Rate,
}

impl ScenarioOne {
    /// Builds the scenario with all links at 54 Mbps.
    pub fn new() -> ScenarioOne {
        ScenarioOne::with_rate(Rate::from_mbps(54.0))
    }

    /// Builds the scenario with a custom common link rate.
    pub fn with_rate(rate: Rate) -> ScenarioOne {
        let mut t = Topology::new();
        // Three disjoint transmitter/receiver pairs.
        let ends: Vec<_> = (0..3)
            .map(|i| {
                let tx = t.add_node(i as f64 * 100.0, 0.0);
                let rx = t.add_node(i as f64 * 100.0 + 10.0, 0.0);
                (tx, rx)
            })
            .collect();
        // awb-audit: allow(no-panic-in-lib) — both endpoints were just added to a fresh topology
        let l1 = t.add_link(ends[0].0, ends[0].1).expect("fresh nodes");
        // awb-audit: allow(no-panic-in-lib) — both endpoints were just added to a fresh topology
        let l2 = t.add_link(ends[1].0, ends[1].1).expect("fresh nodes");
        // awb-audit: allow(no-panic-in-lib) — both endpoints were just added to a fresh topology
        let l3 = t.add_link(ends[2].0, ends[2].1).expect("fresh nodes");
        let model = DeclarativeModel::builder(t)
            .alone_rates(l1, &[rate])
            .alone_rates(l2, &[rate])
            .alone_rates(l3, &[rate])
            .conflict_all(l1, l3)
            .conflict_all(l2, l3)
            // L3's endpoints hear both background links (paper: "link L3
            // interferes with and hears both the transmissions") —
            // and symmetrically, hearing being a function of received
            // power, L1's and L2's endpoints hear L3.
            .hears(ends[2].0, l1)
            .hears(ends[2].0, l2)
            .hears(ends[2].1, l1)
            .hears(ends[2].1, l2)
            .hears(ends[0].0, l3)
            .hears(ends[0].1, l3)
            .hears(ends[1].0, l3)
            .hears(ends[1].1, l3)
            .build();
        ScenarioOne {
            model,
            links: [l1, l2, l3],
            rate,
        }
    }

    /// The interference model.
    pub fn model(&self) -> &DeclarativeModel {
        &self.model
    }

    /// The background links `L1` and `L2` and the measured link `L3`.
    pub fn links(&self) -> [LinkId; 3] {
        self.links
    }

    /// The common link rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Background flows occupying time share `lambda` on `L1` and on `L2`
    /// (demand `λ · r` each).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lambda ≤ 1`.
    pub fn background(&self, lambda: f64) -> Vec<Flow> {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        let t = self.model.topology();
        let demand = lambda * self.rate.as_mbps();
        [self.links[0], self.links[1]]
            .into_iter()
            .map(|l| {
                Flow::new(
                    // awb-audit: allow(no-panic-in-lib) — a one-link path is trivially consecutive
                    Path::new(t, vec![l]).expect("single-link paths are valid"),
                    demand,
                )
                // awb-audit: allow(no-panic-in-lib) — demand = λ·rate with finite λ and rate
                .expect("demand is finite and non-negative")
            })
            .collect()
    }

    /// The one-hop path over `L3` whose available bandwidth is in question.
    pub fn new_path(&self) -> Path {
        // awb-audit: allow(no-panic-in-lib) — a one-link path is trivially consecutive
        Path::new(self.model.topology(), vec![self.links[2]]).expect("single-link paths are valid")
    }

    /// The *non-overlapping* background schedule a contention MAC produces
    /// before the new flow arrives: `L1` for `λ`, then `L2` for `λ`
    /// (disjoint slots). This is the schedule against which carrier-sensing
    /// estimation observes busy share `2λ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lambda ≤ 0.5` (shares must fit in one period).
    pub fn naive_background_schedule(&self, lambda: f64) -> Schedule {
        assert!(
            (0.0..=0.5).contains(&lambda),
            "non-overlapping shares need lambda ≤ 0.5"
        );
        Schedule::new(vec![
            (
                vec![(self.links[0], self.rate)].into_iter().collect(),
                lambda,
            ),
            (
                vec![(self.links[1], self.rate)].into_iter().collect(),
                lambda,
            ),
        ])
    }

    /// The *overlapping* background schedule an optimal scheduler converges
    /// to: `L1` and `L2` simultaneously for `λ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lambda ≤ 1`.
    pub fn optimal_background_schedule(&self, lambda: f64) -> Schedule {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        Schedule::new(vec![(
            vec![(self.links[0], self.rate), (self.links[1], self.rate)]
                .into_iter()
                .collect(),
            lambda,
        )])
    }
}

impl Default for ScenarioOne {
    fn default() -> Self {
        ScenarioOne::new()
    }
}

/// **Scenario II** (paper §3.1 and §5.1, Fig. 1): a four-link chain where
/// every link supports 36 and 54 Mbps alone; any two of `{L1, L2, L3}`
/// conflict at all rates, as do any two of `{L2, L3, L4}`; `L1` and `L4`
/// conflict **only** when `L1` transmits at 54 Mbps.
///
/// This is the paper's counterexample to the clique constraint: the optimal
/// end-to-end throughput of the 4-hop flow is **16.2 Mbps**, above the
/// fixed-rate clique bounds 13.5 (all-54) and 108/7 ≈ 15.43 (L1 at 36).
///
/// ```
/// use awb_workloads::ScenarioTwo;
/// let s2 = ScenarioTwo::new();
/// assert_eq!(s2.links().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioTwo {
    model: DeclarativeModel,
    links: [LinkId; 4],
}

impl ScenarioTwo {
    /// Builds the scenario.
    pub fn new() -> ScenarioTwo {
        let r54 = Rate::from_mbps(54.0);
        let r36 = Rate::from_mbps(36.0);
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..5).map(|i| t.add_node(i as f64 * 50.0, 0.0)).collect();
        let links: Vec<LinkId> = nodes
            .windows(2)
            // awb-audit: allow(no-panic-in-lib) — windows(2) over the node line yields consecutive links
            .map(|w| t.add_link(w[0], w[1]).expect("fresh nodes"))
            .collect();
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, &[r54, r36]);
        }
        // Any two of {L1, L2, L3} and any two of {L2, L3, L4}.
        for &(i, j) in &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b = b.conflict_all(links[i], links[j]);
        }
        // L1 at 54 conflicts with L4 at either rate; L1 at 36 does not.
        b = b
            .conflict_at(links[0], r54, links[3], r54)
            .conflict_at(links[0], r54, links[3], r36);
        ScenarioTwo {
            model: b.build(),
            links: [links[0], links[1], links[2], links[3]],
        }
    }

    /// The interference model.
    pub fn model(&self) -> &DeclarativeModel {
        &self.model
    }

    /// Links `L1..L4` in chain order.
    pub fn links(&self) -> [LinkId; 4] {
        self.links
    }

    /// The 4-hop path `L1 → L2 → L3 → L4`.
    pub fn path(&self) -> Path {
        // awb-audit: allow(no-panic-in-lib) — the chain links share endpoints by construction
        Path::new(self.model.topology(), self.links.to_vec()).expect("the chain links form a path")
    }

    /// The paper's optimal end-to-end throughput for the 4-hop flow.
    pub const OPTIMAL_THROUGHPUT_MBPS: f64 = 16.2;

    /// The Eq. 7 bound for the all-54 rate vector (`4/54` per unit → 13.5).
    pub const ALL_54_CLIQUE_BOUND_MBPS: f64 = 13.5;

    /// The Eq. 7 bound for the `(36, 54, 54, 54)` rate vector
    /// (`1/36 + 2/54` per unit → `108/7`).
    pub const L1_36_CLIQUE_BOUND_MBPS: f64 = 108.0 / 7.0;
}

impl Default for ScenarioTwo {
    fn default() -> Self {
        ScenarioTwo::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::LinkRateModel;

    #[test]
    fn scenario_one_conflicts_and_hearing() {
        let s = ScenarioOne::new();
        let [l1, l2, l3] = s.links();
        let r = s.rate();
        let m = s.model();
        assert!(m.admissible(&[(l1, r), (l2, r)]));
        assert!(!m.admissible(&[(l1, r), (l3, r)]));
        assert!(!m.admissible(&[(l2, r), (l3, r)]));
        // L3's transmitter hears both background links.
        let tx3 = m.topology().link(l3).unwrap().tx();
        assert!(m.node_hears(tx3, l1));
        assert!(m.node_hears(tx3, l2));
        // L1's transmitter does not hear L2.
        let tx1 = m.topology().link(l1).unwrap().tx();
        assert!(!m.node_hears(tx1, l2));
    }

    #[test]
    fn scenario_one_schedules() {
        let s = ScenarioOne::new();
        let m = s.model();
        let naive = s.naive_background_schedule(0.3);
        let optimal = s.optimal_background_schedule(0.3);
        assert!(naive.is_valid(m));
        assert!(optimal.is_valid(m));
        let tx3 = m.topology().link(s.links()[2]).unwrap().tx();
        assert!((naive.busy_share_at(m, tx3) - 0.6).abs() < 1e-12);
        assert!((optimal.busy_share_at(m, tx3) - 0.3).abs() < 1e-12);
        // Both schedules deliver the same background throughput.
        for l in [s.links()[0], s.links()[1]] {
            assert!((naive.link_throughput(l) - optimal.link_throughput(l)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn scenario_one_rejects_bad_lambda() {
        let _ = ScenarioOne::new().background(1.5);
    }

    #[test]
    fn scenario_two_conflict_structure() {
        let s = ScenarioTwo::new();
        let [l1, l2, l3, l4] = s.links();
        let m = s.model();
        let r54 = Rate::from_mbps(54.0);
        let r36 = Rate::from_mbps(36.0);
        // The distinguishing pair.
        assert!(!m.admissible(&[(l1, r54), (l4, r54)]));
        assert!(!m.admissible(&[(l1, r54), (l4, r36)]));
        assert!(m.admissible(&[(l1, r36), (l4, r54)]));
        assert!(m.admissible(&[(l1, r36), (l4, r36)]));
        // Everything else conflicts.
        for (a, b) in [(l1, l2), (l1, l3), (l2, l3), (l2, l4), (l3, l4)] {
            for ra in [r54, r36] {
                for rb in [r54, r36] {
                    assert!(!m.admissible(&[(a, ra), (b, rb)]));
                }
            }
        }
    }

    #[test]
    fn scenario_two_path_is_the_chain() {
        let s = ScenarioTwo::new();
        let p = s.path();
        assert_eq!(p.links(), &s.links()[..]);
        let nodes = p.nodes(s.model().topology()).unwrap();
        assert_eq!(nodes.len(), 5);
    }
}
