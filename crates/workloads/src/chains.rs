//! Regular chain and grid topologies for tests and benches.

use awb_net::{Path, SinrModel, Topology};
use awb_phy::Phy;

/// A linear chain of `n_hops` links with nodes `hop_length` metres apart,
/// under the given radio model. Returns the model and the end-to-end path.
///
/// Only the forward consecutive links are materialized — this is the
/// multihop-relay fixture, not a connectivity graph.
///
/// # Panics
///
/// Panics if `n_hops == 0`, `hop_length` is non-positive, or `hop_length`
/// exceeds the radio's decoding range (the chain would be disconnected).
pub fn chain_model(n_hops: usize, hop_length: f64, phy: Phy) -> (SinrModel, Path) {
    assert!(n_hops > 0, "a chain needs at least one hop");
    assert!(
        hop_length > 0.0 && hop_length.is_finite(),
        "hop length must be positive"
    );
    assert!(
        hop_length <= phy.max_range(),
        "hop length {hop_length} exceeds decoding range {}",
        phy.max_range()
    );
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..=n_hops)
        .map(|i| t.add_node(i as f64 * hop_length, 0.0))
        .collect();
    let links: Vec<_> = nodes
        .windows(2)
        // awb-audit: allow(no-panic-in-lib) — both endpoints were just added to a fresh topology
        .map(|w| t.add_link(w[0], w[1]).expect("fresh nodes"))
        .collect();
    let model = SinrModel::new(t, phy);
    // awb-audit: allow(no-panic-in-lib) — windows(2) over the node line yields consecutive links
    let path = Path::new(model.topology(), links).expect("consecutive links chain");
    (model, path)
}

/// A `rows × cols` grid of nodes spaced `spacing` metres apart, with a
/// directed link between every ordered pair within decoding range.
///
/// # Panics
///
/// Panics if either dimension is zero or `spacing` is non-positive.
pub fn grid_model(rows: usize, cols: usize, spacing: f64, phy: Phy) -> SinrModel {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    assert!(
        spacing > 0.0 && spacing.is_finite(),
        "spacing must be positive"
    );
    let mut t = Topology::new();
    let mut nodes = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            nodes.push(t.add_node(c as f64 * spacing, r as f64 * spacing));
        }
    }
    let range = phy.max_range();
    for &a in &nodes {
        for &b in &nodes {
            // awb-audit: allow(no-panic-in-lib) — distinct nodes in the same fresh topology
            if a != b && t.distance(a, b).expect("fresh nodes") <= range {
                // awb-audit: allow(no-panic-in-lib) — each ordered pair is linked at most once
                t.add_link(a, b).expect("pairs visited once");
            }
        }
    }
    SinrModel::new(t, phy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::LinkRateModel;

    #[test]
    fn chain_has_expected_shape() {
        let (m, p) = chain_model(4, 50.0, Phy::paper_default());
        assert_eq!(m.topology().num_nodes(), 5);
        assert_eq!(m.topology().num_links(), 4);
        assert_eq!(p.len(), 4);
        // 50 m hops decode at the top rate alone.
        for &l in p.links() {
            assert_eq!(m.max_alone_rate(l).unwrap().as_mbps(), 54.0);
        }
    }

    #[test]
    fn long_hops_reduce_alone_rate() {
        let (m, p) = chain_model(2, 150.0, Phy::paper_default());
        for &l in p.links() {
            assert_eq!(m.max_alone_rate(l).unwrap().as_mbps(), 6.0);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds decoding range")]
    fn out_of_range_chain_panics() {
        let _ = chain_model(2, 200.0, Phy::paper_default());
    }

    #[test]
    fn grid_connects_neighbours_within_range() {
        let m = grid_model(3, 3, 100.0, Phy::paper_default());
        let t = m.topology();
        assert_eq!(t.num_nodes(), 9);
        // From the corner: 100 m right and down are in range (158 m), the
        // 141 m diagonal is too, 200 m pairs are not.
        let n0 = t.nodes().next().unwrap().id();
        assert_eq!(t.links_from(n0).count(), 3);
    }

    #[test]
    fn grid_link_count_is_symmetric() {
        let m = grid_model(2, 2, 120.0, Phy::paper_default());
        let t = m.topology();
        for link in t.links() {
            assert!(t.link_between(link.rx(), link.tx()).is_some());
        }
    }
}
