//! The estimator-campaign scenario matrix (§5.2 at scale).
//!
//! A campaign is the cartesian product of a few experimental axes — node
//! density, rate policy, contention model, traffic matrix, topology/traffic
//! seed — flattened into a deterministic list of [`ScenarioCell`]s. Cells
//! are pure *data* (this crate knows nothing about the simulator): the bench
//! layer materialises each cell into a topology + flows + `SimConfig` and
//! fans the list out over worker threads (`awb_sim::campaign::fan_out`),
//! which cannot change any cell's result because every cell carries its own
//! seeds.
//!
//! The axis order of [`ScenarioMatrix::cells`] is part of the output
//! contract: cell `index` identifies the same experiment in every run, so
//! benchmark JSON rows can be diffed across commits.

use crate::RandomTopologyConfig;

/// A node-density point: a node count and the field it is scattered over.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DensityPoint {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Field width in metres.
    pub width: f64,
    /// Field height in metres.
    pub height: f64,
}

impl DensityPoint {
    /// The paper's base instance: 30 nodes on 400 m × 600 m.
    #[must_use]
    pub fn paper_base() -> DensityPoint {
        DensityPoint {
            num_nodes: 30,
            width: 400.0,
            height: 600.0,
        }
    }

    /// A point with `num_nodes` nodes at the **same density** as the paper
    /// base: linear dimensions scale by `sqrt(num_nodes / 30)`, so the mean
    /// neighbourhood size — and with it the contention structure — stays
    /// constant while the network grows.
    #[must_use]
    pub fn paper_density(num_nodes: usize) -> DensityPoint {
        let base = DensityPoint::paper_base();
        let scale = (num_nodes as f64 / base.num_nodes as f64).sqrt();
        DensityPoint {
            num_nodes,
            width: base.width * scale,
            height: base.height * scale,
        }
    }

    /// The topology-generator config for this density point with the given
    /// placement seed.
    #[must_use]
    pub fn topology_config(&self, seed: u64) -> RandomTopologyConfig {
        RandomTopologyConfig {
            width: self.width,
            height: self.height,
            num_nodes: self.num_nodes,
            seed,
        }
    }
}

/// How transmitting links pick their rate (mirrors `awb_sim::RatePolicy`
/// without depending on the simulator crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RateMix {
    /// Every link uses its maximum alone-rate.
    AloneMax,
    /// Every link uses its lowest (most robust) rate.
    Lowest,
}

/// How backlogged links contend (mirrors `awb_sim::Contention` as plain
/// data).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ContentionSpec {
    /// Idealized ordered CSMA (collision-free among mutual hearers).
    OrderedCsma,
    /// p-persistent slotted CSMA with the given attempt probability.
    PPersistent(f64),
    /// 802.11 DCF-style binary exponential backoff.
    Dcf {
        /// Minimum contention window.
        cw_min: u32,
        /// Maximum contention window.
        cw_max: u32,
    },
}

impl ContentionSpec {
    /// A short stable label for benchmark rows.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ContentionSpec::OrderedCsma => "ordered".into(),
            ContentionSpec::PPersistent(p) => format!("p{p}"),
            ContentionSpec::Dcf { cw_min, cw_max } => format!("dcf{cw_min}-{cw_max}"),
        }
    }
}

/// A traffic matrix: how many random connected source/destination pairs, the
/// admissible BFS hop range, and the per-flow demand.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrafficSpec {
    /// Number of flows (random connected pairs).
    pub num_flows: usize,
    /// Minimum BFS hop distance between the endpoints.
    pub min_hops: usize,
    /// Maximum BFS hop distance between the endpoints.
    pub max_hops: usize,
    /// Per-flow demand in Mbps; `None` = saturated sources.
    pub demand_mbps: Option<f64>,
}

impl TrafficSpec {
    /// The paper's §5.2 traffic: 8 random pairs, 2–4 hops, 2 Mbps each.
    #[must_use]
    pub fn paper_default() -> TrafficSpec {
        TrafficSpec {
            num_flows: 8,
            min_hops: 2,
            max_hops: 4,
            demand_mbps: Some(2.0),
        }
    }
}

/// The full campaign: a cartesian product of axes, flattened in a fixed
/// order by [`cells`](ScenarioMatrix::cells).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScenarioMatrix {
    /// Node-density axis.
    pub densities: Vec<DensityPoint>,
    /// Rate-policy axis.
    pub rate_mixes: Vec<RateMix>,
    /// Contention-model axis.
    pub contentions: Vec<ContentionSpec>,
    /// Traffic-matrix axis.
    pub traffics: Vec<TrafficSpec>,
    /// Seed axis (drives node placement, pair selection and the MAC RNG).
    pub seeds: Vec<u64>,
}

/// One experiment: a point of the cartesian product, tagged with its stable
/// flat index.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScenarioCell {
    /// Position in [`ScenarioMatrix::cells`] — stable across runs.
    pub index: usize,
    /// Node density.
    pub density: DensityPoint,
    /// Rate policy.
    pub rate_mix: RateMix,
    /// Contention model.
    pub contention: ContentionSpec,
    /// Traffic matrix.
    pub traffic: TrafficSpec,
    /// Seed for placement, pair selection and the MAC RNG.
    pub seed: u64,
}

impl ScenarioMatrix {
    /// Flattens the product with seeds innermost and densities outermost
    /// (densities vary slowest, so consecutive cells share a topology
    /// scale).
    #[must_use]
    pub fn cells(&self) -> Vec<ScenarioCell> {
        let mut out = Vec::new();
        for density in &self.densities {
            for rate_mix in &self.rate_mixes {
                for contention in &self.contentions {
                    for traffic in &self.traffics {
                        for &seed in &self.seeds {
                            out.push(ScenarioCell {
                                index: out.len(),
                                density: *density,
                                rate_mix: *rate_mix,
                                contention: *contention,
                                traffic: traffic.clone(),
                                seed,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Total number of cells without materialising them.
    #[must_use]
    pub fn len(&self) -> usize {
        self.densities.len()
            * self.rate_mixes.len()
            * self.contentions.len()
            * self.traffics.len()
            * self.seeds.len()
    }

    /// Whether any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_density_scaling_preserves_area_per_node() {
        let base = DensityPoint::paper_base();
        let big = DensityPoint::paper_density(300);
        let base_area = base.width * base.height / base.num_nodes as f64;
        let big_area = big.width * big.height / big.num_nodes as f64;
        assert!((base_area - big_area).abs() < 1e-6 * base_area);
        assert_eq!(big.num_nodes, 300);
    }

    #[test]
    fn cells_enumerate_the_full_product_with_stable_indices() {
        let m = ScenarioMatrix {
            densities: vec![DensityPoint::paper_base(), DensityPoint::paper_density(60)],
            rate_mixes: vec![RateMix::AloneMax],
            contentions: vec![
                ContentionSpec::OrderedCsma,
                ContentionSpec::PPersistent(0.5),
            ],
            traffics: vec![TrafficSpec::paper_default()],
            seeds: vec![1, 2, 3],
        };
        let cells = m.cells();
        assert_eq!(cells.len(), m.len());
        assert_eq!(cells.len(), 12);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Seeds innermost: the first three cells differ only by seed.
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[2].seed, 3);
        assert_eq!(cells[0].density, cells[2].density);
        // Densities outermost.
        assert_eq!(cells[6].density.num_nodes, 60);
    }
}
