//! The §5.2 random topology: nodes scattered uniformly in a rectangle, links
//! between every pair within decoding range.

use awb_net::{LinkRateModel, NodeId, SinrModel, Topology};
use awb_phy::Phy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Parameters of the random topology (defaults are the paper's: 30 nodes in
/// a 400 m × 600 m rectangle).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RandomTopologyConfig {
    /// Field width in metres.
    pub width: f64,
    /// Field height in metres.
    pub height: f64,
    /// Number of nodes.
    pub num_nodes: usize,
    /// RNG seed (the paper does not publish its draw; fixing a seed makes
    /// every experiment reproducible).
    pub seed: u64,
}

impl Default for RandomTopologyConfig {
    fn default() -> Self {
        RandomTopologyConfig {
            width: 400.0,
            height: 600.0,
            num_nodes: 30,
            seed: 7,
        }
    }
}

/// A generated random topology with its SINR model.
#[derive(Debug, Clone)]
pub struct RandomTopology {
    config: RandomTopologyConfig,
    model: SinrModel,
}

impl RandomTopology {
    /// Generates a topology with the paper's radio model
    /// ([`Phy::paper_default`]).
    pub fn generate(config: RandomTopologyConfig) -> RandomTopology {
        RandomTopology::generate_with_phy(config, Phy::paper_default())
    }

    /// Generates a topology with a custom radio model. A directed link is
    /// added between every ordered node pair within `phy.max_range()`.
    pub fn generate_with_phy(config: RandomTopologyConfig, phy: Phy) -> RandomTopology {
        assert!(config.num_nodes >= 2, "need at least two nodes");
        assert!(
            config.width > 0.0 && config.height > 0.0,
            "field dimensions must be positive"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..config.num_nodes)
            .map(|_| {
                let x = rng.gen_range(0.0..config.width);
                let y = rng.gen_range(0.0..config.height);
                t.add_node(x, y)
            })
            .collect();
        let range = phy.max_range();
        for &a in &nodes {
            for &b in &nodes {
                // awb-audit: allow(no-panic-in-lib) — distinct nodes in the same fresh topology
                if a != b && t.distance(a, b).expect("fresh nodes") <= range {
                    // awb-audit: allow(no-panic-in-lib) — each ordered pair is linked at most once
                    t.add_link(a, b).expect("pairs are visited once");
                }
            }
        }
        RandomTopology {
            config,
            model: SinrModel::new(t, phy),
        }
    }

    /// The generation parameters.
    pub fn config(&self) -> &RandomTopologyConfig {
        &self.config
    }

    /// The SINR model over the generated topology.
    pub fn model(&self) -> &SinrModel {
        &self.model
    }

    /// Consumes the wrapper, returning the model.
    pub fn into_model(self) -> SinrModel {
        self.model
    }
}

/// BFS hop distance from `src` to `dst` over the topology's links, if any
/// path exists.
pub fn shortest_hop_distance(
    topology: &awb_net::Topology,
    src: NodeId,
    dst: NodeId,
) -> Option<usize> {
    if src == dst {
        return Some(0);
    }
    let n = topology.num_nodes();
    let mut dist: Vec<Option<usize>> = vec![None; n];
    dist[src.index()] = Some(0);
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        // awb-audit: allow(no-panic-in-lib) — nodes are enqueued only after their distance is set
        let d = dist[u.index()].expect("queued nodes have distances");
        for link in topology.links_from(u) {
            let v = link.rx();
            if dist[v.index()].is_none() {
                if v == dst {
                    return Some(d + 1);
                }
                dist[v.index()] = Some(d + 1);
                queue.push_back(v);
            }
        }
    }
    None
}

/// Draws `count` distinct source/destination pairs that are connected and
/// whose BFS hop distance lies within `hops` (the paper's "8 sources and
/// their destinations are randomly chosen").
///
/// # Panics
///
/// Panics if the topology cannot supply `count` such pairs within a bounded
/// number of draws (10 000 attempts), which indicates a disconnected or
/// too-small topology for the request.
pub fn connected_pairs<M: LinkRateModel>(
    model: &M,
    count: usize,
    hops: std::ops::RangeInclusive<usize>,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let t = model.topology();
    let nodes: Vec<NodeId> = t.nodes().map(|n| n.id()).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out: Vec<(NodeId, NodeId)> = Vec::with_capacity(count);
    let mut attempts = 0;
    while out.len() < count {
        attempts += 1;
        assert!(
            attempts <= 10_000,
            "could not find {count} connected pairs (found {})",
            out.len()
        );
        let src = nodes[rng.gen_range(0..nodes.len())];
        let dst = nodes[rng.gen_range(0..nodes.len())];
        if src == dst || out.contains(&(src, dst)) {
            continue;
        }
        match shortest_hop_distance(t, src, dst) {
            Some(h) if hops.contains(&h) => out.push((src, dst)),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = RandomTopology::generate(RandomTopologyConfig::default());
        let b = RandomTopology::generate(RandomTopologyConfig::default());
        assert_eq!(
            a.model().topology().num_links(),
            b.model().topology().num_links()
        );
        let c = RandomTopology::generate(RandomTopologyConfig {
            seed: 1234,
            ..RandomTopologyConfig::default()
        });
        // Overwhelmingly likely to differ.
        let same = a.model().topology().num_links() == c.model().topology().num_links()
            && a.model()
                .topology()
                .nodes()
                .zip(c.model().topology().nodes())
                .all(|(x, y)| x.position() == y.position());
        assert!(!same);
    }

    #[test]
    fn links_respect_decoding_range() {
        let rt = RandomTopology::generate(RandomTopologyConfig::default());
        let t = rt.model().topology();
        let range = rt.model().phy().max_range();
        for link in t.links() {
            let d = t.distance(link.tx(), link.rx()).unwrap();
            assert!(d <= range);
        }
        // Links come in both directions.
        for link in t.links() {
            assert!(t.link_between(link.rx(), link.tx()).is_some());
        }
    }

    #[test]
    fn paper_dimensions_are_defaults() {
        let c = RandomTopologyConfig::default();
        assert_eq!((c.width, c.height, c.num_nodes), (400.0, 600.0, 30));
    }

    #[test]
    fn bfs_distance_on_a_chain() {
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..4)
            .map(|i| t.add_node(f64::from(i) * 10.0, 0.0))
            .collect();
        for w in nodes.windows(2) {
            t.add_link(w[0], w[1]).unwrap();
        }
        assert_eq!(shortest_hop_distance(&t, nodes[0], nodes[3]), Some(3));
        assert_eq!(shortest_hop_distance(&t, nodes[0], nodes[0]), Some(0));
        // Directed: no reverse links were added.
        assert_eq!(shortest_hop_distance(&t, nodes[3], nodes[0]), None);
    }

    #[test]
    fn connected_pairs_meet_constraints() {
        let rt = RandomTopology::generate(RandomTopologyConfig::default());
        let pairs = connected_pairs(rt.model(), 8, 2..=4, 7);
        assert_eq!(pairs.len(), 8);
        let t = rt.model().topology();
        for (s, d) in pairs {
            assert!(s != d);
            assert!((2..=4).contains(&shortest_hop_distance(t, s, d).unwrap()));
        }
    }

    use awb_net::Topology;
}
