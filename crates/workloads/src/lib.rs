//! Workloads and fixtures for the `awb` workspace: the paper's
//! hand-constructed Scenario I and Scenario II topologies, the §5.2 random
//! topology generator, and regular chain/grid topologies for benches.
//!
//! # Example
//!
//! ```
//! use awb_workloads::ScenarioTwo;
//!
//! let s2 = ScenarioTwo::new();
//! assert_eq!(s2.path().len(), 4); // the four-link chain of Fig. 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chains;
mod matrix;
pub mod mobility;
mod random;
mod scenarios;

pub use chains::{chain_model, grid_model};
pub use matrix::{
    ContentionSpec, DensityPoint, RateMix, ScenarioCell, ScenarioMatrix, TrafficSpec,
};
pub use mobility::{demand_pairs, speed_sweep, DemandPattern, WaypointConfig, WaypointMobility};
pub use random::{connected_pairs, shortest_hop_distance, RandomTopology, RandomTopologyConfig};
pub use scenarios::{ScenarioOne, ScenarioTwo};
