//! Deterministic random-waypoint mobility traces with stable link identity.
//!
//! The paper evaluates static topologies; this module supplies the dynamic
//! counterpart used by the delta-recompilation benches: a subset of nodes
//! performs classic random-waypoint motion (pick a uniform waypoint and a
//! uniform speed, travel, repeat) over a sequence of discrete **epochs**,
//! and every epoch yields a full [`SinrModel`] snapshot plus, via
//! [`awb_net::TopologyDelta::between`], an exact delta against the previous
//! epoch.
//!
//! # Stable link identity
//!
//! Incremental recompilation is only meaningful when a link keeps its
//! [`awb_net::LinkId`] across epochs. [`WaypointMobility`] therefore keeps a
//! persistent first-seen-ordered table of every directed node pair that has
//! *ever* been within decoding range; each snapshot rebuilds the topology
//! with **all** nodes and **all** ever-seen links in table order, so ids are
//! a stable, append-only sequence. A link whose endpoints have since drifted
//! out of range stays in the topology and simply compiles to an empty
//! alone-rate set — it is dead, not renumbered.
//!
//! # Demand matrices
//!
//! [`DemandPattern`] draws the source/destination pairs the re-admission
//! experiments route each epoch: convergecast onto a central sink
//! ([`DemandPattern::SinkTree`] — the sensor-network baseline), a random hot
//! destination ([`DemandPattern::HotDest`]), and uniform unidirectional /
//! bidirectional pairs ([`DemandPattern::Unidir`], [`DemandPattern::Bidir`]).

use awb_net::{NodeId, SinrModel, Topology};
use awb_phy::Phy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Parameters of a random-waypoint mobility trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WaypointConfig {
    /// Field width in metres.
    pub width: f64,
    /// Field height in metres.
    pub height: f64,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Fraction of nodes that move (the rest are anchored); rounded up to a
    /// whole node count.
    pub mobile_fraction: f64,
    /// Minimum waypoint leg speed in m/s.
    pub speed_min: f64,
    /// Maximum waypoint leg speed in m/s.
    pub speed_max: f64,
    /// Wall-clock seconds per epoch (distance travelled per epoch is
    /// `speed × epoch_seconds`).
    pub epoch_seconds: f64,
    /// RNG seed; the whole trace is a pure function of the config.
    pub seed: u64,
}

impl Default for WaypointConfig {
    fn default() -> Self {
        WaypointConfig {
            width: 400.0,
            height: 600.0,
            num_nodes: 30,
            mobile_fraction: 0.1,
            speed_min: 1.0,
            speed_max: 5.0,
            epoch_seconds: 10.0,
            seed: 7,
        }
    }
}

/// Copies of `base` pinned to each given leg speed (min = max = speed) — the
/// speed sweep axis of the mobility benches.
pub fn speed_sweep(base: &WaypointConfig, speeds_mps: &[f64]) -> Vec<WaypointConfig> {
    speeds_mps
        .iter()
        .map(|&s| WaypointConfig {
            speed_min: s,
            speed_max: s,
            ..*base
        })
        .collect()
}

/// One mobile node's current leg: where it is headed and how fast.
#[derive(Debug, Clone, Copy)]
struct Leg {
    target: (f64, f64),
    speed: f64,
}

/// A running random-waypoint trace: positions plus the persistent link-id
/// table (see module docs). Call [`WaypointMobility::snapshot`] for the
/// current epoch's model and [`WaypointMobility::advance`] to move to the
/// next.
#[derive(Debug, Clone)]
pub struct WaypointMobility {
    config: WaypointConfig,
    phy: Phy,
    rng: SmallRng,
    positions: Vec<(f64, f64)>,
    mobile: Vec<bool>,
    legs: Vec<Option<Leg>>,
    /// Ever-seen directed pairs in first-seen order — index IS the LinkId.
    links: Vec<(usize, usize)>,
    known: BTreeSet<(usize, usize)>,
    epoch: usize,
}

impl WaypointMobility {
    /// Starts a trace with the paper's radio ([`Phy::paper_default`]).
    pub fn new(config: WaypointConfig) -> WaypointMobility {
        WaypointMobility::with_phy(config, Phy::paper_default())
    }

    /// Starts a trace with a custom radio.
    pub fn with_phy(config: WaypointConfig, phy: Phy) -> WaypointMobility {
        assert!(config.num_nodes >= 2, "need at least two nodes");
        assert!(
            config.width > 0.0 && config.height > 0.0,
            "field dimensions must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&config.mobile_fraction),
            "mobile fraction must lie in [0, 1]"
        );
        assert!(
            config.speed_min > 0.0 && config.speed_max >= config.speed_min,
            "speeds must be positive with min <= max"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let positions: Vec<(f64, f64)> = (0..config.num_nodes)
            .map(|_| {
                (
                    rng.gen_range(0.0..config.width),
                    rng.gen_range(0.0..config.height),
                )
            })
            .collect();
        // Partial Fisher-Yates: the first `num_mobile` slots of a shuffled
        // index vector are a uniform sample without replacement.
        let num_mobile = ((config.num_nodes as f64 * config.mobile_fraction).ceil() as usize)
            .min(config.num_nodes);
        let mut order: Vec<usize> = (0..config.num_nodes).collect();
        for i in 0..num_mobile {
            let j = rng.gen_range(i..order.len());
            order.swap(i, j);
        }
        let mut mobile = vec![false; config.num_nodes];
        for &i in &order[..num_mobile] {
            mobile[i] = true;
        }
        let mut trace = WaypointMobility {
            config,
            phy,
            rng,
            positions,
            mobile,
            legs: vec![None; config.num_nodes],
            links: Vec::new(),
            known: BTreeSet::new(),
            epoch: 0,
        };
        for i in 0..config.num_nodes {
            if trace.mobile[i] {
                trace.legs[i] = Some(trace.draw_leg());
            }
        }
        trace
    }

    fn draw_leg(&mut self) -> Leg {
        Leg {
            target: (
                self.rng.gen_range(0.0..self.config.width),
                self.rng.gen_range(0.0..self.config.height),
            ),
            speed: if self.config.speed_max > self.config.speed_min {
                self.rng
                    .gen_range(self.config.speed_min..self.config.speed_max)
            } else {
                self.config.speed_min
            },
        }
    }

    /// The trace parameters.
    pub fn config(&self) -> &WaypointConfig {
        &self.config
    }

    /// The radio model the snapshots are built with.
    pub fn phy(&self) -> &Phy {
        &self.phy
    }

    /// Epochs advanced so far (0 before the first [`Self::advance`]).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Node indices that move (for assertions and reporting).
    pub fn mobile_nodes(&self) -> Vec<usize> {
        (0..self.config.num_nodes)
            .filter(|&i| self.mobile[i])
            .collect()
    }

    /// Number of links the persistent table has ever seen.
    pub fn num_known_links(&self) -> usize {
        self.links.len()
    }

    /// Moves every mobile node by one epoch of waypoint travel. A node that
    /// reaches its waypoint mid-epoch draws a fresh leg and keeps moving
    /// with the leftover time (no pause — the harshest case for the
    /// recompiler).
    pub fn advance(&mut self) {
        self.epoch += 1;
        for i in 0..self.config.num_nodes {
            if !self.mobile[i] {
                continue;
            }
            let mut budget = self.config.epoch_seconds;
            while budget > 0.0 {
                // awb-audit: allow(no-panic-in-lib) — mobile nodes always hold a leg
                let leg = self.legs[i].expect("mobile nodes always have a leg");
                let (x, y) = self.positions[i];
                let (tx, ty) = leg.target;
                let dist = ((tx - x).powi(2) + (ty - y).powi(2)).sqrt();
                let reach = leg.speed * budget;
                if reach >= dist {
                    self.positions[i] = leg.target;
                    budget -= if leg.speed > 0.0 {
                        dist / leg.speed
                    } else {
                        budget
                    };
                    self.legs[i] = Some(self.draw_leg());
                    // awb-audit: allow(no-float-eq) — exact-zero leg guard, not a tolerance test
                    if dist == 0.0 {
                        break; // zero-length leg: avoid spinning on redraws
                    }
                } else {
                    let f = reach / dist;
                    self.positions[i] = (x + (tx - x) * f, y + (ty - y) * f);
                    budget = 0.0;
                }
            }
        }
    }

    /// Builds the current epoch's [`SinrModel`]: all nodes at their current
    /// positions, all ever-seen links in stable id order (newly in-range
    /// pairs are appended to the table first — both directions, ordered
    /// pairs scanned `(i, j)` ascending).
    pub fn snapshot(&mut self) -> SinrModel {
        let range = self.phy.max_range();
        let n = self.config.num_nodes;
        for i in 0..n {
            for j in (i + 1)..n {
                let (xi, yi) = self.positions[i];
                let (xj, yj) = self.positions[j];
                let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                if d <= range {
                    if self.known.insert((i, j)) {
                        self.links.push((i, j));
                    }
                    if self.known.insert((j, i)) {
                        self.links.push((j, i));
                    }
                }
            }
        }
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = self
            .positions
            .iter()
            .map(|&(x, y)| t.add_node(x, y))
            .collect();
        for &(i, j) in &self.links {
            let added = t.add_link(nodes[i], nodes[j]);
            // awb-audit: allow(no-panic-in-lib) — table pairs are distinct and inserted once
            added.expect("link table pairs are distinct and unique");
        }
        SinrModel::new(t, self.phy.clone())
    }
}

/// The shape of the demand matrix routed each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DemandPattern {
    /// Convergecast: every flow sinks at the node nearest the field centre
    /// (the sensor-network data-collection tree).
    SinkTree,
    /// All flows target one randomly drawn hot destination.
    HotDest,
    /// Independent uniformly random ordered pairs.
    Unidir,
    /// Uniformly random pairs, each taken in both directions.
    Bidir,
}

/// Draws `flows` source/destination pairs over `topology` under `pattern`.
/// Pairs are distinct as ordered pairs and never self-loops; no
/// connectivity is guaranteed — under mobility a pair may simply be
/// unroutable that epoch, which the admission layer reports as a rejection.
///
/// # Panics
///
/// Panics if the topology cannot supply `flows` distinct pairs (more flows
/// than distinct pairs available).
pub fn demand_pairs(
    topology: &Topology,
    pattern: DemandPattern,
    flows: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let n = topology.num_nodes();
    assert!(n >= 2, "need at least two nodes for demands");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out: Vec<(NodeId, NodeId)> = Vec::with_capacity(flows);
    let draw_distinct =
        |rng: &mut SmallRng, out: &mut Vec<(NodeId, NodeId)>, fixed_dst: Option<NodeId>| {
            let limit = 100_000;
            for _ in 0..limit {
                let src = NodeId::from_index(rng.gen_range(0..n));
                let dst = fixed_dst.unwrap_or_else(|| NodeId::from_index(rng.gen_range(0..n)));
                if src != dst && !out.contains(&(src, dst)) {
                    out.push((src, dst));
                    return;
                }
            }
            // awb-audit: allow(no-panic-in-lib) — documented `# Panics` limit, 100k rejection draws
            panic!("could not draw {flows} distinct demand pairs");
        };
    match pattern {
        DemandPattern::SinkTree => {
            let sink = central_node(topology);
            for _ in 0..flows {
                draw_distinct(&mut rng, &mut out, Some(sink));
            }
        }
        DemandPattern::HotDest => {
            let dest = NodeId::from_index(rng.gen_range(0..n));
            for _ in 0..flows {
                draw_distinct(&mut rng, &mut out, Some(dest));
            }
        }
        DemandPattern::Unidir => {
            for _ in 0..flows {
                draw_distinct(&mut rng, &mut out, None);
            }
        }
        DemandPattern::Bidir => {
            while out.len() < flows {
                draw_distinct(&mut rng, &mut out, None);
                if out.len() < flows {
                    // awb-audit: allow(no-panic-in-lib) — a pair was just pushed
                    let &(s, d) = out.last().expect("a pair was just drawn");
                    if !out.contains(&(d, s)) {
                        out.push((d, s));
                    }
                }
            }
        }
    }
    out
}

/// The node nearest the field centroid — the convergecast sink.
fn central_node(topology: &Topology) -> NodeId {
    let n = topology.num_nodes() as f64;
    let (mut cx, mut cy) = (0.0, 0.0);
    for node in topology.nodes() {
        let p = node.position();
        cx += p.x / n;
        cy += p.y / n;
    }
    let mut best = (f64::INFINITY, NodeId::from_index(0));
    for node in topology.nodes() {
        let p = node.position();
        let d2 = (p.x - cx).powi(2) + (p.y - cy).powi(2);
        if d2 < best.0 {
            best = (d2, node.id());
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{LinkRateModel, TopologyDelta};

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = WaypointConfig::default();
        let run = |cfg: WaypointConfig| {
            let mut m = WaypointMobility::new(cfg);
            let mut sizes = Vec::new();
            for _ in 0..4 {
                let snap = m.snapshot();
                sizes.push((
                    snap.topology().num_links(),
                    snap.topology()
                        .nodes()
                        .map(|n| n.position().x.to_bits() ^ n.position().y.to_bits())
                        .fold(0u64, u64::wrapping_add),
                ));
                m.advance();
            }
            sizes
        };
        assert_eq!(run(cfg), run(cfg));
        assert_ne!(run(cfg), run(WaypointConfig { seed: 99, ..cfg }));
    }

    #[test]
    fn link_ids_are_stable_and_append_only() {
        let mut m = WaypointMobility::new(WaypointConfig {
            mobile_fraction: 0.5,
            speed_min: 20.0,
            speed_max: 20.0,
            ..WaypointConfig::default()
        });
        let first = m.snapshot();
        let first_links: Vec<_> = first.topology().links().map(|l| (l.tx(), l.rx())).collect();
        for _ in 0..3 {
            m.advance();
        }
        let later = m.snapshot();
        let later_links: Vec<_> = later.topology().links().map(|l| (l.tx(), l.rx())).collect();
        // The earlier table is a prefix: same (tx, rx) at the same LinkId.
        assert!(later_links.len() >= first_links.len());
        assert_eq!(&later_links[..first_links.len()], &first_links[..]);
    }

    #[test]
    fn deltas_report_only_mobile_nodes() {
        let cfg = WaypointConfig {
            num_nodes: 20,
            mobile_fraction: 0.2,
            ..WaypointConfig::default()
        };
        let mut m = WaypointMobility::new(cfg);
        let mobile = m.mobile_nodes();
        assert_eq!(mobile.len(), 4);
        let prev = m.snapshot();
        m.advance();
        let cur = m.snapshot();
        let delta = TopologyDelta::between(&prev, &cur);
        for node in &delta.moved_nodes {
            assert!(mobile.contains(&node.index()), "{node:?} is anchored");
        }
        // Anchored nodes never move; joins/leaves don't apply (all nodes
        // exist from epoch 0).
        assert!(delta.joined_nodes.is_empty());
        assert!(delta.left_nodes.is_empty());
    }

    #[test]
    fn out_of_range_links_go_dead_not_renumbered() {
        let cfg = WaypointConfig {
            num_nodes: 8,
            mobile_fraction: 1.0,
            speed_min: 30.0,
            speed_max: 30.0,
            epoch_seconds: 10.0,
            seed: 11,
            ..WaypointConfig::default()
        };
        let mut m = WaypointMobility::new(cfg);
        let mut dead_seen = false;
        for _ in 0..6 {
            let snap = m.snapshot();
            let t = snap.topology();
            let range = m.phy().max_range();
            for link in t.links() {
                let d = t.distance(link.tx(), link.rx()).unwrap();
                let alone = snap.alone_rates(link.id());
                if d > range {
                    assert!(alone.is_empty(), "out-of-range link must be dead");
                    dead_seen = true;
                } else {
                    assert!(!alone.is_empty(), "in-range link must be alive");
                }
            }
            m.advance();
        }
        assert!(dead_seen, "trace never produced a dead link at 30 m/s");
    }

    #[test]
    fn speed_sweep_pins_speeds() {
        let cfgs = speed_sweep(&WaypointConfig::default(), &[1.0, 5.0, 10.0]);
        assert_eq!(cfgs.len(), 3);
        assert!(cfgs
            .iter()
            .zip([1.0, 5.0, 10.0])
            .all(|(c, s)| c.speed_min == s && c.speed_max == s));
    }

    #[test]
    fn demand_patterns_have_their_shapes() {
        let mut m = WaypointMobility::new(WaypointConfig::default());
        let snap = m.snapshot();
        let t = snap.topology();
        let sink_tree = demand_pairs(t, DemandPattern::SinkTree, 6, 3);
        let sink = sink_tree[0].1;
        assert!(sink_tree.iter().all(|&(s, d)| d == sink && s != d));
        assert_eq!(sink, central_node(t));
        let hot = demand_pairs(t, DemandPattern::HotDest, 6, 3);
        let dest = hot[0].1;
        assert!(hot.iter().all(|&(s, d)| d == dest && s != d));
        let uni = demand_pairs(t, DemandPattern::Unidir, 6, 3);
        assert_eq!(uni.len(), 6);
        let mut dedup = uni.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 6, "ordered pairs are distinct");
        let bi = demand_pairs(t, DemandPattern::Bidir, 6, 3);
        assert_eq!(bi.len(), 6);
        assert!(bi.chunks(2).all(|c| c.len() < 2 || c[0].0 == c[1].1));
    }

    #[test]
    fn anchored_trace_produces_empty_deltas() {
        let mut m = WaypointMobility::new(WaypointConfig {
            mobile_fraction: 0.0,
            ..WaypointConfig::default()
        });
        let a = m.snapshot();
        m.advance();
        let b = m.snapshot();
        assert!(TopologyDelta::between(&a, &b).is_empty());
    }
}
