use crate::idle::IdleMap;
use awb_net::{LinkId, LinkRateModel, Path};
use awb_phy::Rate;

/// One hop of a path as the distributed estimators see it: the link, its
/// effective data rate `r_i` (the maximum rate it supports alone) and its
/// usable time share `λ_i` from carrier sensing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// The link.
    pub link: LinkId,
    /// Effective data rate `r_i`.
    pub rate: Rate,
    /// Usable time share `λ_i ∈ [0, 1]`.
    pub idle: f64,
}

impl Hop {
    /// Builds the hop view of `link`: rate from the model's alone rate,
    /// idleness from the map. Returns `None` for dead links (no supported
    /// rate), whose available bandwidth is zero by definition.
    pub fn for_link<M: LinkRateModel>(model: &M, idle: &IdleMap, link: LinkId) -> Option<Hop> {
        let rate = model.max_alone_rate(link)?;
        Some(Hop {
            link,
            rate,
            idle: idle.link(model, link),
        })
    }

    /// Builds the hop views of an entire path; `None` if any hop is dead.
    pub fn for_path<M: LinkRateModel>(model: &M, idle: &IdleMap, path: &Path) -> Option<Vec<Hop>> {
        path.links()
            .iter()
            .map(|&l| Hop::for_link(model, idle, l))
            .collect()
    }

    /// The `(link, rate)` couple used for clique construction.
    pub fn couple(&self) -> (LinkId, Rate) {
        (self.link, self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_workloads::ScenarioOne;

    #[test]
    fn hops_combine_rate_and_idleness() {
        let s = ScenarioOne::new();
        let idle = IdleMap::from_schedule(s.model(), &s.naive_background_schedule(0.2));
        let hops = Hop::for_path(s.model(), &idle, &s.new_path()).unwrap();
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].rate.as_mbps(), 54.0);
        assert!((hops[0].idle - 0.6).abs() < 1e-12);
        assert_eq!(hops[0].couple().0, s.links()[2]);
    }
}
