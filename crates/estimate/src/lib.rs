//! Distributed estimation of path available bandwidth (paper §4).
//!
//! In a distributed network a node cannot know the global optimal schedule;
//! it can only **carrier-sense** the channel and measure an idleness ratio
//! `λ_idle`. From the per-link idle shares and effective data rates, the
//! paper derives five estimators of a path's available bandwidth:
//!
//! | Estimator | Equation | Idea |
//! |---|---|---|
//! | [`Estimator::BottleneckNode`] | Eq. 10 | `min_i λ_i · r_i`, interference ignored |
//! | [`Estimator::CliqueConstraint`] | Eq. 11 | `1 / Σ_C 1/r_i` per local clique, background ignored |
//! | [`Estimator::MinOfBoth`] | Eq. 12 | minimum of the two above |
//! | [`Estimator::ConservativeClique`] | Eq. 13 | sorted-λ prefix bound per local clique — the paper's best |
//! | [`Estimator::ExpectedCliqueTime`] | Eq. 15 | `1 / Σ_C 1/(λ_i r_i)` per local clique |
//!
//! Local interference cliques come from [`awb_sets::local_cliques`]; idle
//! ratios are computed against any background [`awb_core::Schedule`] via
//! [`IdleMap`] (analytically — the `awb-sim` crate measures the same thing
//! behaviourally with a CSMA MAC).
//!
//! # Example
//!
//! ```
//! use awb_estimate::{Estimator, Hop};
//! use awb_workloads::ScenarioOne;
//! use awb_estimate::IdleMap;
//!
//! let s1 = ScenarioOne::new();
//! // Background occupies λ = 0.3 on L1 and L2 in non-overlapping slots.
//! let idle = IdleMap::from_schedule(s1.model(), &s1.naive_background_schedule(0.3));
//! let hops = vec![Hop::for_link(s1.model(), &idle, s1.links()[2]).unwrap()];
//! let est = Estimator::BottleneckNode.estimate(s1.model(), &hops);
//! // The carrier-sensing view believes only 1 − 2λ = 40% of the channel
//! // remains: 0.4 · 54 = 21.6 Mbps (the true optimum is 0.7 · 54 = 37.8).
//! assert!((est - 21.6).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hop;
mod idle;
mod metrics;
mod path;

pub use hop::Hop;
pub use idle::IdleMap;
pub use metrics::{
    bottleneck_node_bandwidth, clique_constraint, conservative_clique,
    expected_clique_transmission_time, min_clique_and_bottleneck, Estimator,
};
pub use path::{binding_hop, prefix_estimates};
