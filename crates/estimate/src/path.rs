//! Per-prefix estimation along a path (paper §4: "each intermediate node on
//! a path estimates the available bandwidth from the source to itself").

use crate::hop::Hop;
use crate::metrics::Estimator;
use awb_net::LinkRateModel;

/// The estimates a distributed routing protocol would accumulate hop by hop:
/// entry `i` is the chosen estimator's value for the prefix covering hops
/// `0..=i`. Values are non-increasing along the path (appending a hop can
/// only add clique constraints and lower minima).
pub fn prefix_estimates<M: LinkRateModel>(
    model: &M,
    estimator: Estimator,
    hops: &[Hop],
) -> Vec<f64> {
    (1..=hops.len())
        .map(|k| estimator.estimate(model, &hops[..k]))
        .collect()
}

/// The bottleneck prefix: the hop index (0-based) at which the estimate
/// first reaches its final value — where the path's constraint binds. For
/// an empty path, `None`.
pub fn binding_hop<M: LinkRateModel>(
    model: &M,
    estimator: Estimator,
    hops: &[Hop],
) -> Option<usize> {
    let prefixes = prefix_estimates(model, estimator, hops);
    let last = *prefixes.last()?;
    prefixes.iter().position(|&v| (v - last).abs() < 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, LinkId, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    fn chain(rates: &[f64], idles: &[f64]) -> (DeclarativeModel, Vec<Hop>) {
        let n = rates.len();
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..=n).map(|i| t.add_node(i as f64 * 10.0, 0.0)).collect();
        let links: Vec<LinkId> = nodes
            .windows(2)
            .map(|w| t.add_link(w[0], w[1]).unwrap())
            .collect();
        let mut b = DeclarativeModel::builder(t);
        for (i, &l) in links.iter().enumerate() {
            b = b.alone_rates(l, &[r(rates[i])]);
        }
        for w in links.windows(2) {
            b = b.conflict_all(w[0], w[1]);
        }
        let model = b.build();
        let hops = links
            .iter()
            .enumerate()
            .map(|(i, &link)| Hop {
                link,
                rate: r(rates[i]),
                idle: idles[i],
            })
            .collect();
        (model, hops)
    }

    #[test]
    fn prefixes_are_non_increasing() {
        let (m, hops) = chain(&[54.0, 36.0, 18.0, 54.0], &[0.9, 0.8, 0.7, 1.0]);
        for e in Estimator::ALL {
            let p = prefix_estimates(&m, e, &hops);
            assert_eq!(p.len(), 4);
            for w in p.windows(2) {
                assert!(w[1] <= w[0] + 1e-9, "{e}: {w:?}");
            }
            // The final prefix equals the whole-path estimate.
            assert!((p[3] - e.estimate(&m, &hops)).abs() < 1e-12);
        }
    }

    #[test]
    fn binding_hop_finds_the_constraint() {
        // Slow hop in the middle: Eq. 10 binds once hop 2 is included.
        let (m, hops) = chain(&[54.0, 54.0, 6.0, 54.0], &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(binding_hop(&m, Estimator::BottleneckNode, &hops), Some(2));
        assert_eq!(binding_hop(&m, Estimator::BottleneckNode, &[]), None);
    }
}
