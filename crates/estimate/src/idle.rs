//! Channel idleness ratios from carrier sensing.

use awb_core::Schedule;
use awb_net::{LinkId, LinkRateModel, NodeId};

/// Per-node channel idleness ratios `λ_idle` (paper §4): the fraction of
/// time a node senses the channel idle under a given background schedule.
///
/// The analytic construction assumes the schedule's slots do not overlap in
/// time beyond their declared concurrency — exactly what a node would
/// measure if the background were scheduled as stated. A link's usable time
/// share is the *smaller* idleness of its two endpoints (Eq. 10's
/// `λ_i ≤ min{λ_idle,tx, λ_idle,rx}`).
#[derive(Debug, Clone, PartialEq)]
pub struct IdleMap {
    /// Indexed by node id.
    idle: Vec<f64>,
}

impl IdleMap {
    /// Measures idleness for every node of `model`'s topology against
    /// `background`.
    pub fn from_schedule<M: LinkRateModel>(model: &M, background: &Schedule) -> IdleMap {
        let t = model.topology();
        let idle = t
            .nodes()
            .map(|n| 1.0 - background.busy_share_at(model, n.id()))
            .collect();
        IdleMap { idle }
    }

    /// Builds a map from explicit per-node ratios (testing, or ratios
    /// measured by the `awb-sim` MAC simulator).
    ///
    /// # Panics
    ///
    /// Panics if any ratio is outside `[0, 1]`.
    pub fn from_ratios(idle: Vec<f64>) -> IdleMap {
        assert!(
            idle.iter().all(|r| (0.0..=1.0).contains(r)),
            "idle ratios must lie in [0, 1]"
        );
        IdleMap { idle }
    }

    /// The idleness ratio of `node` (1.0 for unknown nodes: an unobserved
    /// node has seen no traffic).
    pub fn node(&self, node: NodeId) -> f64 {
        self.idle.get(node.index()).copied().unwrap_or(1.0)
    }

    /// The usable time share of `link`: the smaller idleness of its
    /// endpoints.
    pub fn link<M: LinkRateModel>(&self, model: &M, link: LinkId) -> f64 {
        match model.topology().link(link) {
            Ok(l) => self.node(l.tx()).min(self.node(l.rx())),
            Err(_) => 1.0,
        }
    }

    /// All per-node ratios, indexed by node id.
    pub fn ratios(&self) -> &[f64] {
        &self.idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_workloads::ScenarioOne;

    #[test]
    fn naive_schedule_doubles_busy_share() {
        let s = ScenarioOne::new();
        let m = s.model();
        let [l1, _, l3] = s.links();
        let naive = IdleMap::from_schedule(m, &s.naive_background_schedule(0.3));
        let optimal = IdleMap::from_schedule(m, &s.optimal_background_schedule(0.3));
        // L3's endpoints hear both links: idle 0.4 vs 0.7.
        assert!((naive.link(m, l3) - 0.4).abs() < 1e-12);
        assert!((optimal.link(m, l3) - 0.7).abs() < 1e-12);
        // L1's endpoints hear only themselves: busy exactly λ either way.
        assert!((naive.link(m, l1) - 0.7).abs() < 1e-12);
        assert!((optimal.link(m, l1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn from_ratios_validates_range() {
        let m = IdleMap::from_ratios(vec![0.0, 0.5, 1.0]);
        assert_eq!(m.node(awb_net::NodeId::from_index(1)), 0.5);
        // Unknown nodes read as fully idle.
        assert_eq!(m.node(awb_net::NodeId::from_index(99)), 1.0);
    }

    #[test]
    #[should_panic(expected = "idle ratios")]
    fn out_of_range_ratios_panic() {
        let _ = IdleMap::from_ratios(vec![1.5]);
    }

    #[test]
    fn empty_schedule_means_fully_idle() {
        let s = ScenarioOne::new();
        let idle = IdleMap::from_schedule(s.model(), &awb_core::Schedule::empty());
        assert!(idle.ratios().iter().all(|&r| r == 1.0));
    }
}
