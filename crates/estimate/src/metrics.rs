//! The five §4 estimators of path available bandwidth.

use crate::hop::Hop;
use awb_net::LinkRateModel;
use awb_sets::{local_cliques, LocalClique};
use std::fmt;

fn cliques_of<M: LinkRateModel>(model: &M, hops: &[Hop]) -> Vec<LocalClique> {
    let couples: Vec<_> = hops.iter().map(Hop::couple).collect();
    local_cliques(model, &couples)
}

/// Eq. 10 — **bottleneck node bandwidth**: `min_i λ_i · r_i`. Considers
/// background traffic (via idleness) but ignores interference among the
/// path's own hops, so it overestimates under light background.
///
/// Returns 0.0 for an empty hop list.
pub fn bottleneck_node_bandwidth(hops: &[Hop]) -> f64 {
    if hops.is_empty() {
        return 0.0;
    }
    hops.iter()
        .map(|h| h.idle * h.rate.as_mbps())
        .fold(f64::INFINITY, f64::min)
}

/// Eq. 11 — **clique constraint**: `min_C 1 / Σ_{i∈C} 1/r_i` over the local
/// interference cliques. Considers self-interference along the path but
/// ignores background traffic, so it overestimates under heavy background
/// (and *underestimates* under light background, missing link adaptation).
pub fn clique_constraint<M: LinkRateModel>(model: &M, hops: &[Hop]) -> f64 {
    if hops.is_empty() {
        return 0.0;
    }
    cliques_of(model, hops)
        .into_iter()
        .map(|c| {
            let t: f64 = c.hops().map(|i| 1.0 / hops[i].rate.as_mbps()).sum();
            1.0 / t
        })
        .fold(f64::INFINITY, f64::min)
}

/// Eq. 12 — the minimum of the clique constraint (Eq. 11) and the bottleneck
/// node bandwidth (Eq. 10).
pub fn min_clique_and_bottleneck<M: LinkRateModel>(model: &M, hops: &[Hop]) -> f64 {
    clique_constraint(model, hops).min(bottleneck_node_bandwidth(hops))
}

/// Eq. 13 — the **conservative clique constraint**, the paper's best
/// estimator: within each local clique, assume the idle time `λ_i` of link
/// `L_i` must be shared by every clique member with a smaller idle share.
/// With members sorted by increasing `λ`,
/// `f ≤ min_i λ_i / Σ_{j ≤ i} (1/r_j)`, then minimized over cliques.
pub fn conservative_clique<M: LinkRateModel>(model: &M, hops: &[Hop]) -> f64 {
    if hops.is_empty() {
        return 0.0;
    }
    cliques_of(model, hops)
        .into_iter()
        .map(|c| {
            let mut members: Vec<&Hop> = c.hops().map(|i| &hops[i]).collect();
            members.sort_by(|a, b| a.idle.total_cmp(&b.idle));
            let mut prefix_time = 0.0;
            let mut best = f64::INFINITY;
            for h in members {
                prefix_time += 1.0 / h.rate.as_mbps();
                best = best.min(h.idle / prefix_time);
            }
            best
        })
        .fold(f64::INFINITY, f64::min)
}

/// Eq. 15 — **expected clique transmission time**: treat `1/(λ_i r_i)` as
/// each member's expected time to move one unit of traffic and bound
/// `f ≤ 1 / max_C Σ_{i∈C} 1/(λ_i r_i)`.
///
/// A hop with zero idle share pins the estimate to zero.
pub fn expected_clique_transmission_time<M: LinkRateModel>(model: &M, hops: &[Hop]) -> f64 {
    if hops.is_empty() {
        return 0.0;
    }
    if hops.iter().any(|h| h.idle <= 0.0) {
        return 0.0;
    }
    cliques_of(model, hops)
        .into_iter()
        .map(|c| {
            let t: f64 = c
                .hops()
                .map(|i| 1.0 / (hops[i].idle * hops[i].rate.as_mbps()))
                .sum();
            1.0 / t
        })
        .fold(f64::INFINITY, f64::min)
}

/// The five §4 estimators as a closed set, for sweeping in experiments
/// (Fig. 4 compares all of them against the LP ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Estimator {
    /// Eq. 10 — bottleneck node bandwidth.
    BottleneckNode,
    /// Eq. 11 — clique constraint.
    CliqueConstraint,
    /// Eq. 12 — min of Eq. 10 and Eq. 11.
    MinOfBoth,
    /// Eq. 13 — conservative clique constraint.
    ConservativeClique,
    /// Eq. 15 — expected clique transmission time.
    ExpectedCliqueTime,
}

impl Estimator {
    /// All estimators, in the order Fig. 4 discusses them.
    pub const ALL: [Estimator; 5] = [
        Estimator::CliqueConstraint,
        Estimator::BottleneckNode,
        Estimator::MinOfBoth,
        Estimator::ConservativeClique,
        Estimator::ExpectedCliqueTime,
    ];

    /// Runs the estimator on a path's hops.
    pub fn estimate<M: LinkRateModel>(self, model: &M, hops: &[Hop]) -> f64 {
        match self {
            Estimator::BottleneckNode => bottleneck_node_bandwidth(hops),
            Estimator::CliqueConstraint => clique_constraint(model, hops),
            Estimator::MinOfBoth => min_clique_and_bottleneck(model, hops),
            Estimator::ConservativeClique => conservative_clique(model, hops),
            Estimator::ExpectedCliqueTime => expected_clique_transmission_time(model, hops),
        }
    }

    /// The paper's label for this estimator.
    pub fn label(self) -> &'static str {
        match self {
            Estimator::BottleneckNode => "bottleneck node bandwidth",
            Estimator::CliqueConstraint => "clique constraint",
            Estimator::MinOfBoth => "min of the above two",
            Estimator::ConservativeClique => "conservative clique constraint",
            Estimator::ExpectedCliqueTime => "expected clique transmission time",
        }
    }
}

impl fmt::Display for Estimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, LinkId, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// A 3-hop chain path where consecutive hops conflict (spread 1), with
    /// given rates.
    fn chain(rates: &[f64]) -> (DeclarativeModel, Vec<LinkId>) {
        let n = rates.len();
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..=n).map(|i| t.add_node(i as f64 * 10.0, 0.0)).collect();
        let links: Vec<LinkId> = nodes
            .windows(2)
            .map(|w| t.add_link(w[0], w[1]).unwrap())
            .collect();
        let mut b = DeclarativeModel::builder(t);
        for (i, &l) in links.iter().enumerate() {
            b = b.alone_rates(l, &[r(rates[i])]);
        }
        for w in links.windows(2) {
            b = b.conflict_all(w[0], w[1]);
        }
        (b.build(), links)
    }

    fn hops(links: &[LinkId], rates: &[f64], idles: &[f64]) -> Vec<Hop> {
        links
            .iter()
            .zip(rates.iter().zip(idles))
            .map(|(&link, (&rate, &idle))| Hop {
                link,
                rate: r(rate),
                idle,
            })
            .collect()
    }

    #[test]
    fn bottleneck_is_min_idle_times_rate() {
        let (_, links) = chain(&[54.0, 36.0, 18.0]);
        let h = hops(&links, &[54.0, 36.0, 18.0], &[0.5, 1.0, 0.9]);
        // Products: 27, 36, 16.2 → min 16.2.
        assert!((bottleneck_node_bandwidth(&h) - 16.2).abs() < 1e-9);
        assert_eq!(bottleneck_node_bandwidth(&[]), 0.0);
    }

    #[test]
    fn clique_constraint_uses_local_windows() {
        let (m, links) = chain(&[54.0, 54.0, 54.0]);
        let h = hops(&links, &[54.0, 54.0, 54.0], &[1.0, 1.0, 1.0]);
        // Local cliques are consecutive pairs: 1/(2/54) = 27.
        assert!((clique_constraint(&m, &h) - 27.0).abs() < 1e-9);
    }

    #[test]
    fn eq12_is_the_min_of_its_parts() {
        let (m, links) = chain(&[54.0, 54.0]);
        let h = hops(&links, &[54.0, 54.0], &[0.3, 1.0]);
        let c = clique_constraint(&m, &h);
        let b = bottleneck_node_bandwidth(&h);
        assert!((min_clique_and_bottleneck(&m, &h) - c.min(b)).abs() < 1e-12);
    }

    #[test]
    fn conservative_clique_orders_by_idleness() {
        let (m, links) = chain(&[54.0, 54.0]);
        // One clique {0,1}; λ sorted: (0.2, 54), (0.8, 54).
        // Prefix bounds: 0.2/(1/54) = 10.8; 0.8/(2/54) = 21.6 → 10.8.
        let h = hops(&links, &[54.0, 54.0], &[0.8, 0.2]);
        assert!((conservative_clique(&m, &h) - 10.8).abs() < 1e-9);
    }

    #[test]
    fn conservative_never_exceeds_eq11_or_eq10_on_cliques() {
        let (m, links) = chain(&[54.0, 36.0, 18.0]);
        let h = hops(&links, &[54.0, 36.0, 18.0], &[0.4, 0.7, 0.9]);
        assert!(conservative_clique(&m, &h) <= clique_constraint(&m, &h) + 1e-12);
    }

    #[test]
    fn expected_time_discounts_by_idleness() {
        let (m, links) = chain(&[54.0, 54.0]);
        let h = hops(&links, &[54.0, 54.0], &[0.5, 0.5]);
        // Σ 1/(0.5·54) over the pair = 2/27 → 13.5.
        assert!((expected_clique_transmission_time(&m, &h) - 13.5).abs() < 1e-9);
        // Zero idleness anywhere → zero estimate.
        let h0 = hops(&links, &[54.0, 54.0], &[0.0, 1.0]);
        assert_eq!(expected_clique_transmission_time(&m, &h0), 0.0);
    }

    #[test]
    fn estimator_enum_dispatch_matches_functions() {
        let (m, links) = chain(&[54.0, 36.0]);
        let h = hops(&links, &[54.0, 36.0], &[0.6, 0.8]);
        assert_eq!(
            Estimator::ConservativeClique.estimate(&m, &h),
            conservative_clique(&m, &h)
        );
        assert_eq!(Estimator::ALL.len(), 5);
        assert_eq!(
            Estimator::ConservativeClique.to_string(),
            "conservative clique constraint"
        );
    }

    #[test]
    fn single_hop_estimates() {
        let (m, links) = chain(&[36.0]);
        let h = hops(&links, &[36.0], &[0.5]);
        assert!((clique_constraint(&m, &h) - 36.0).abs() < 1e-9);
        assert!((bottleneck_node_bandwidth(&h) - 18.0).abs() < 1e-9);
        assert!((conservative_clique(&m, &h) - 18.0).abs() < 1e-9);
        assert!((expected_clique_transmission_time(&m, &h) - 18.0).abs() < 1e-9);
    }
}
