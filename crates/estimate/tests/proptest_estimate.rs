//! Property tests for the §4 estimators: orderings between the equations,
//! idle-ratio consistency, and behaviour under scaling.

use awb_estimate::{
    bottleneck_node_bandwidth, clique_constraint, conservative_clique,
    expected_clique_transmission_time, min_clique_and_bottleneck, Estimator, Hop, IdleMap,
};
use awb_net::{DeclarativeModel, LinkId, Topology};
use awb_phy::Rate;
use proptest::prelude::*;

fn r(m: f64) -> Rate {
    Rate::from_mbps(m)
}

#[derive(Debug, Clone)]
struct PathInstance {
    rates: Vec<f64>,
    idles: Vec<f64>,
    spread: usize,
}

fn path_instance() -> impl Strategy<Value = PathInstance> {
    (1usize..=6, 1usize..=3).prop_flat_map(|(hops, spread)| {
        (
            proptest::collection::vec(
                prop_oneof![Just(54.0), Just(36.0), Just(18.0), Just(6.0)],
                hops,
            ),
            proptest::collection::vec(0.05f64..=1.0, hops),
            Just(spread),
        )
            .prop_map(move |(rates, idles, spread)| PathInstance {
                rates,
                idles,
                spread,
            })
    })
}

fn build(inst: &PathInstance) -> (DeclarativeModel, Vec<Hop>) {
    let n = inst.rates.len();
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..=n).map(|i| t.add_node(i as f64 * 10.0, 0.0)).collect();
    let links: Vec<LinkId> = nodes
        .windows(2)
        .map(|w| t.add_link(w[0], w[1]).expect("fresh nodes"))
        .collect();
    let mut b = DeclarativeModel::builder(t);
    for (i, &l) in links.iter().enumerate() {
        b = b.alone_rates(l, &[r(inst.rates[i])]);
    }
    for i in 0..n {
        for j in (i + 1)..n.min(i + inst.spread + 1) {
            b = b.conflict_all(links[i], links[j]);
        }
    }
    let model = b.build();
    let hops = links
        .iter()
        .enumerate()
        .map(|(i, &link)| Hop {
            link,
            rate: r(inst.rates[i]),
            idle: inst.idles[i],
        })
        .collect();
    (model, hops)
}

proptest! {
    #[test]
    fn all_estimates_are_non_negative_and_finite(inst in path_instance()) {
        let (m, hops) = build(&inst);
        for e in Estimator::ALL {
            let v = e.estimate(&m, &hops);
            prop_assert!(v.is_finite() && v >= 0.0, "{e}: {v}");
        }
    }

    #[test]
    fn conservative_never_exceeds_clique_constraint(inst in path_instance()) {
        let (m, hops) = build(&inst);
        prop_assert!(conservative_clique(&m, &hops) <= clique_constraint(&m, &hops) + 1e-9);
    }

    #[test]
    fn eq12_is_exactly_the_min(inst in path_instance()) {
        let (m, hops) = build(&inst);
        let expected =
            clique_constraint(&m, &hops).min(bottleneck_node_bandwidth(&hops));
        prop_assert!((min_clique_and_bottleneck(&m, &hops) - expected).abs() < 1e-12);
    }

    #[test]
    fn expected_time_never_exceeds_clique_constraint(inst in path_instance()) {
        // 1/Σ(1/(λr)) ≤ 1/Σ(1/r) since λ ≤ 1 termwise, per clique; and the
        // min over cliques preserves the domination... termwise domination
        // holds per clique, but the minimizing clique may differ, so compare
        // against the *clique-wise* statement: the Eq. 15 value is ≤ the
        // Eq. 11 value computed over the same clique set. Since both take
        // min over the same cliques and Eq15(C) ≤ Eq11(C) for every C,
        // min Eq15 ≤ min Eq11.
        let (m, hops) = build(&inst);
        prop_assert!(
            expected_clique_transmission_time(&m, &hops)
                <= clique_constraint(&m, &hops) + 1e-9
        );
    }

    #[test]
    fn full_idleness_collapses_background_aware_estimators(inst in path_instance()) {
        // With λ_i = 1 everywhere: Eq13 = Eq15 = Eq11 and Eq10 = min r_i.
        let (m, mut hops) = build(&inst);
        for h in &mut hops {
            h.idle = 1.0;
        }
        let c = clique_constraint(&m, &hops);
        prop_assert!((conservative_clique(&m, &hops) - c).abs() < 1e-9);
        prop_assert!((expected_clique_transmission_time(&m, &hops) - c).abs() < 1e-9);
        let min_rate = hops
            .iter()
            .map(|h| h.rate.as_mbps())
            .fold(f64::INFINITY, f64::min);
        prop_assert!((bottleneck_node_bandwidth(&hops) - min_rate).abs() < 1e-9);
    }

    #[test]
    fn estimates_scale_monotonically_with_idleness(inst in path_instance()) {
        // Scaling every λ_i up cannot reduce any background-aware estimate.
        let (m, hops) = build(&inst);
        let mut brighter = hops.clone();
        for h in &mut brighter {
            h.idle = (h.idle * 1.5).min(1.0);
        }
        for e in [
            Estimator::BottleneckNode,
            Estimator::ConservativeClique,
            Estimator::ExpectedCliqueTime,
            Estimator::MinOfBoth,
        ] {
            prop_assert!(
                e.estimate(&m, &brighter) + 1e-9 >= e.estimate(&m, &hops),
                "{e} decreased with more idleness"
            );
        }
    }

    #[test]
    fn single_hop_closed_forms(rate in prop_oneof![Just(54.0), Just(36.0), Just(6.0)],
                               idle in 0.0f64..=1.0) {
        let inst = PathInstance { rates: vec![rate], idles: vec![idle], spread: 1 };
        let (m, hops) = build(&inst);
        prop_assert!((clique_constraint(&m, &hops) - rate).abs() < 1e-9);
        for e in [
            Estimator::BottleneckNode,
            Estimator::ConservativeClique,
        ] {
            prop_assert!((e.estimate(&m, &hops) - idle * rate).abs() < 1e-9);
        }
        if idle > 0.0 {
            prop_assert!(
                (Estimator::ExpectedCliqueTime.estimate(&m, &hops) - idle * rate).abs() < 1e-9
            );
        }
    }

    #[test]
    fn idle_map_link_share_is_min_of_endpoints(ratios in proptest::collection::vec(0.0f64..=1.0, 4)) {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 0.0);
        let ab = t.add_link(a, b).expect("fresh nodes");
        let m = DeclarativeModel::builder(t)
            .alone_rates(ab, &[r(54.0)])
            .build();
        let map = IdleMap::from_ratios(ratios.clone());
        let expected = ratios[a.index()].min(ratios[b.index()]);
        prop_assert!((map.link(&m, ab) - expected).abs() < 1e-12);
    }
}
