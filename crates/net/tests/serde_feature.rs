//! Serialization smoke tests (only built with `--features serde`).

#![cfg(feature = "serde")]

use awb_net::{Path, Topology};

#[test]
fn topology_serializes_to_json() {
    let mut t = Topology::new();
    let a = t.add_node(0.0, 0.0);
    let b = t.add_node(50.0, 25.0);
    let ab = t.add_link(a, b).unwrap();
    let json = serde_json::to_value(&t).unwrap();
    assert_eq!(json["nodes"].as_array().unwrap().len(), 2);
    assert_eq!(json["links"].as_array().unwrap().len(), 1);
    let p = Path::new(&t, vec![ab]).unwrap();
    let pj = serde_json::to_value(&p).unwrap();
    assert_eq!(pj["links"].as_array().unwrap().len(), 1);
}
