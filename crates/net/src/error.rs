use crate::ids::{LinkId, NodeId};
use std::error::Error;
use std::fmt;

/// Error raised while building or querying a [`Topology`](crate::Topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A node id does not belong to this topology.
    UnknownNode(NodeId),
    /// A link id does not belong to this topology.
    UnknownLink(LinkId),
    /// Attempted to create a link from a node to itself.
    SelfLoop(NodeId),
    /// Attempted to create a second link with the same transmitter and
    /// receiver.
    DuplicateLink(NodeId, NodeId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::UnknownLink(l) => write!(f, "unknown link {l}"),
            TopologyError::SelfLoop(n) => write!(f, "link endpoints are both {n}"),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "a link from {a} to {b} already exists")
            }
        }
    }
}

impl Error for TopologyError {}

/// Error raised while constructing a [`Path`](crate::Path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PathError {
    /// The path contains no links.
    Empty,
    /// A link id does not belong to the topology.
    UnknownLink(LinkId),
    /// Consecutive links do not share an endpoint: the receiver of one must
    /// be the transmitter of the next.
    Disconnected {
        /// The link whose receiver does not match.
        from: LinkId,
        /// The link whose transmitter does not match.
        to: LinkId,
    },
    /// No link exists between two consecutive nodes of a node sequence.
    MissingLink(NodeId, NodeId),
    /// The same link appears twice.
    RepeatedLink(LinkId),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "a path needs at least one link"),
            PathError::UnknownLink(l) => write!(f, "unknown link {l}"),
            PathError::Disconnected { from, to } => {
                write!(f, "links {from} and {to} are not adjacent")
            }
            PathError::MissingLink(a, b) => write!(f, "no link from {a} to {b}"),
            PathError::RepeatedLink(l) => write!(f, "link {l} appears twice"),
        }
    }
}

impl Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LinkId, NodeId};

    #[test]
    fn displays_mention_the_offender() {
        let e = TopologyError::UnknownNode(NodeId::from_index(4));
        assert!(e.to_string().contains("n4"));
        let e = PathError::Disconnected {
            from: LinkId::from_index(1),
            to: LinkId::from_index(2),
        };
        assert!(e.to_string().contains("L1"));
        assert!(e.to_string().contains("L2"));
    }
}
