//! Typed indices for nodes and links.

use std::fmt;

/// Identifier of a node within a [`Topology`](crate::Topology).
///
/// Ids are dense indices assigned in insertion order; they are only
/// meaningful for the topology that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from a dense index.
    ///
    /// Prefer keeping the ids returned by
    /// [`Topology::add_node`](crate::Topology::add_node); this exists for
    /// serialization and test fixtures.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a directed link within a [`Topology`](crate::Topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The dense index of this link.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from a dense index (see [`NodeId::from_index`]).
    pub fn from_index(index: usize) -> LinkId {
        LinkId(index)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(NodeId::from_index(3).to_string(), "n3");
        assert_eq!(LinkId::from_index(0).to_string(), "L0");
    }

    #[test]
    fn ids_round_trip_indices() {
        assert_eq!(NodeId::from_index(7).index(), 7);
        assert_eq!(LinkId::from_index(9).index(), 9);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(LinkId::from_index(0) < LinkId::from_index(5));
    }
}
