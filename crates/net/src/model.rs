//! The interface between a topology and the rate-coupled combinatorics.

use crate::capture::AdditiveCapture;
use crate::ids::{LinkId, NodeId};
use crate::snapshot::ConflictSnapshot;
use crate::topology::Topology;
use awb_phy::Rate;

/// Answers the admissibility questions from which rate-coupled independent
/// sets and cliques (paper §2.4, §3.1) are built.
///
/// Implementations: [`SinrModel`](crate::SinrModel) (geometric, Eq. 1/Eq. 3)
/// and [`DeclarativeModel`](crate::DeclarativeModel) (hand-stated conflicts,
/// Scenario I/II).
///
/// The model owns its topology so that a single value can be passed through
/// enumeration, scheduling and routing layers.
///
/// Implementations are expected to be **downward closed** (removing a couple
/// from an admissible assignment keeps it admissible) and **rate-monotone**
/// (lowering a couple's rate keeps it admissible). Both bundled models have
/// these properties; set enumeration and dominance pruning rely on them.
///
/// `Sync` is a supertrait so that solvers may price conflict components in
/// parallel by sharing `&M` across threads; models are plain owned data, so
/// every reasonable implementation already satisfies it.
pub trait LinkRateModel: Sync {
    /// The underlying topology.
    fn topology(&self) -> &Topology;

    /// The rates `link` can use when transmitting **alone**, in descending
    /// order. Empty means the link cannot transmit at all (e.g. the nodes are
    /// out of range).
    fn alone_rates(&self, link: LinkId) -> Vec<Rate>;

    /// Whether every `(link, rate)` couple in `assignment` succeeds when all
    /// of them transmit concurrently.
    ///
    /// `assignment` contains each link at most once, with a non-zero rate
    /// drawn from that link's [`alone_rates`](Self::alone_rates).
    /// Implementations may return `false` (rather than panic) for rates that
    /// are not achievable even alone.
    fn admissible(&self, assignment: &[(LinkId, Rate)]) -> bool;

    /// Whether `node` senses the channel busy while `link` transmits — the
    /// carrier-sensing relation used for channel-idle-ratio estimation
    /// (paper §4).
    fn node_hears(&self, node: NodeId, link: LinkId) -> bool;

    /// The maximum rate `link` supports alone, if any.
    fn max_alone_rate(&self, link: LinkId) -> Option<Rate> {
        self.alone_rates(link).first().copied()
    }

    /// Whether two `(link, rate)` couples conflict, i.e. cannot both succeed
    /// concurrently (the paper's "interferes with" relation on couples,
    /// §3.1).
    fn conflicts(&self, a: (LinkId, Rate), b: (LinkId, Rate)) -> bool {
        !self.admissible(&[a, b])
    }

    /// Whether the interference suffered by a link depends only on *which*
    /// other links transmit, not on the rates they use.
    ///
    /// True for the physical model (transmit power is rate-independent, so
    /// Eq. 3's SINR is too); false in general for declarative models, where
    /// conflicts may be stated per rate pair. Enumeration uses this to skip
    /// rate branching.
    fn rate_independent_interference(&self) -> bool {
        false
    }

    /// Whether joint admissibility is *equivalent* to checking every couple
    /// pair with [`conflicts`](Self::conflicts) (given that each rate is
    /// drawn from the link's [`alone_rates`](Self::alone_rates)).
    ///
    /// True for declarative models, whose conflicts are stated per pair;
    /// false for additive-interference models, where three transmitters can
    /// jointly deny a rate that every pair allows. Compiled enumeration
    /// engines use this to decide whether a pairwise conflict bitmask is the
    /// whole admissibility test or merely a sound pre-filter.
    fn pairwise_admissibility_exact(&self) -> bool {
        false
    }

    /// Bulk snapshot of the per-link rates and pairwise couple conflicts of
    /// `universe` — the one-time compilation input for fast enumeration
    /// engines (see [`ConflictSnapshot`]).
    fn conflict_snapshot(&self, universe: &[LinkId]) -> ConflictSnapshot {
        ConflictSnapshot::build(self, universe)
    }

    /// The maximum rate `link` itself can sustain while every couple in
    /// `others` transmits concurrently — regardless of whether those other
    /// transmissions succeed (the per-victim "capture" question a MAC
    /// simulator asks).
    ///
    /// The default tests the link's rates descending against each other
    /// couple pairwise, which is exact for declarative models; models with
    /// additive interference (the physical model) override this with the
    /// exact joint computation.
    fn victim_max_rate(&self, link: LinkId, others: &[(LinkId, Rate)]) -> Option<Rate> {
        self.alone_rates(link).into_iter().find(|&r| {
            others
                .iter()
                .filter(|(l, _)| *l != link)
                .all(|&o| !self.conflicts((link, r), o))
        })
    }

    /// The precompiled additive-interference capture tables of this model,
    /// if it is additive: per-pair received powers, signals, noise and the
    /// tolerance-scaled decode ladder, from which
    /// [`victim_max_rate`](Self::victim_max_rate) can be replayed
    /// bit-for-bit (see [`AdditiveCapture`]).
    ///
    /// `None` (the default) means the model carries no additive tables;
    /// compiled MAC kernels then fall back to pairwise conflict masks (when
    /// [`pairwise_admissibility_exact`](Self::pairwise_admissibility_exact))
    /// or to calling the model directly.
    fn additive_capture(&self) -> Option<AdditiveCapture> {
        None
    }

    /// A fingerprint of everything about `link` — beyond its
    /// [`alone_rates`](Self::alone_rates) — that the model's admissibility
    /// answers over sets *containing* `link` depend on.
    ///
    /// Content-addressed compiled-unit caches (see `awb-core`'s
    /// `UnitCache`) mix this into a component's content hash, so two
    /// compiled snapshots may share a unit only when every member link
    /// fingerprints identically. For geometric models this must cover the
    /// link's endpoint positions: moving a transmitter changes the
    /// interference it injects into co-members even when its own alone
    /// rates are unchanged.
    ///
    /// The default of `0` is correct for models whose admissibility is a
    /// pure function of alone rates and pairwise conflicts
    /// ([`pairwise_admissibility_exact`](Self::pairwise_admissibility_exact)
    /// — the pairwise table is hashed separately). Models with additive
    /// interference **must** override this (and
    /// [`model_fingerprint`](Self::model_fingerprint)); the bundled
    /// [`SinrModel`](crate::SinrModel) does.
    fn link_fingerprint(&self, link: LinkId) -> u64 {
        let _ = link;
        0
    }

    /// A fingerprint of the model-wide parameters every admissibility
    /// answer depends on (for geometric models: the radio — transmit power,
    /// noise floor, path-loss exponent, per-rate sensitivities and SINR
    /// thresholds). Complements [`link_fingerprint`](Self::link_fingerprint)
    /// in compiled-unit content hashes; the default of `0` is correct for
    /// pairwise-exact models.
    fn model_fingerprint(&self) -> u64 {
        0
    }
}

// Blanket impl so `&M` works wherever `M` does (routing and estimation take
// models by reference).
impl<M: LinkRateModel + ?Sized> LinkRateModel for &M {
    fn topology(&self) -> &Topology {
        (**self).topology()
    }
    fn alone_rates(&self, link: LinkId) -> Vec<Rate> {
        (**self).alone_rates(link)
    }
    fn admissible(&self, assignment: &[(LinkId, Rate)]) -> bool {
        (**self).admissible(assignment)
    }
    fn node_hears(&self, node: NodeId, link: LinkId) -> bool {
        (**self).node_hears(node, link)
    }
    fn max_alone_rate(&self, link: LinkId) -> Option<Rate> {
        (**self).max_alone_rate(link)
    }
    fn conflicts(&self, a: (LinkId, Rate), b: (LinkId, Rate)) -> bool {
        (**self).conflicts(a, b)
    }
    fn rate_independent_interference(&self) -> bool {
        (**self).rate_independent_interference()
    }
    fn pairwise_admissibility_exact(&self) -> bool {
        (**self).pairwise_admissibility_exact()
    }
    fn conflict_snapshot(&self, universe: &[LinkId]) -> ConflictSnapshot {
        (**self).conflict_snapshot(universe)
    }
    fn victim_max_rate(&self, link: LinkId, others: &[(LinkId, Rate)]) -> Option<Rate> {
        (**self).victim_max_rate(link, others)
    }
    fn additive_capture(&self) -> Option<AdditiveCapture> {
        (**self).additive_capture()
    }
    // The fingerprints MUST forward: falling back to the defaulted `0` for
    // `&M` would silently break content-addressed unit reuse for callers
    // that pass models by reference (the service passes `&dyn` models).
    fn link_fingerprint(&self, link: LinkId) -> u64 {
        (**self).link_fingerprint(link)
    }
    fn model_fingerprint(&self) -> u64 {
        (**self).model_fingerprint()
    }
}
