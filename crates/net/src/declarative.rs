//! The declarative (hand-stated) interference model.

use crate::error::TopologyError;
use crate::ids::{LinkId, NodeId};
use crate::model::LinkRateModel;
use crate::topology::Topology;
use awb_phy::Rate;
use std::collections::HashSet;

fn rate_key(r: Rate) -> u64 {
    r.as_mbps().to_bits()
}

/// Interference model in which conflicts are stated explicitly, per link
/// pair and optionally per rate pair.
///
/// This is how the paper's Scenario I and Scenario II (§1, §3.1, §5.1) are
/// specified: "any two of links 1, 2 and 3 interfere with each other
/// whichever rates they use", "links 1 and 4 interfere with each other if
/// link 1 transmits with 54 Mbps but not with 36 Mbps", etc.
///
/// Build with [`DeclarativeModel::builder`]:
///
/// ```
/// use awb_net::{DeclarativeModel, LinkRateModel, Topology};
/// use awb_phy::Rate;
///
/// let mut t = Topology::new();
/// let n: Vec<_> = (0..3).map(|i| t.add_node(i as f64, 0.0)).collect();
/// let l1 = t.add_link(n[0], n[1])?;
/// let l2 = t.add_link(n[1], n[2])?;
/// let r54 = Rate::from_mbps(54.0);
/// let model = DeclarativeModel::builder(t)
///     .alone_rates(l1, &[r54])
///     .alone_rates(l2, &[r54])
///     .conflict_all(l1, l2)
///     .build();
/// assert!(!model.admissible(&[(l1, r54), (l2, r54)]));
/// assert!(model.admissible(&[(l1, r54)]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeclarativeModel {
    topology: Topology,
    alone: Vec<Vec<Rate>>,
    /// Link pairs that conflict at every rate combination (canonical order).
    all_pairs: HashSet<(usize, usize)>,
    /// Specific `(link, rate, link, rate)` conflicts (canonical order).
    rate_pairs: HashSet<(usize, u64, usize, u64)>,
    /// Extra hearing relations beyond link participants.
    hears: HashSet<(usize, usize)>,
}

/// Builder for [`DeclarativeModel`].
#[derive(Debug, Clone)]
pub struct DeclarativeModelBuilder {
    topology: Topology,
    alone: Vec<Vec<Rate>>,
    all_pairs: HashSet<(usize, usize)>,
    rate_pairs: HashSet<(usize, u64, usize, u64)>,
    hears: HashSet<(usize, usize)>,
}

impl DeclarativeModel {
    /// The underlying topology.
    ///
    /// Inherent mirror of [`LinkRateModel::topology`] so callers holding a
    /// concrete model don't need the trait in scope (doc examples kept
    /// writing `LinkRateModel::topology(&model)` in UFCS form).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Starts building a model over `topology`. All links default to no
    /// alone rates (dead) and no conflicts.
    pub fn builder(topology: Topology) -> DeclarativeModelBuilder {
        let alone = vec![Vec::new(); topology.num_links()];
        DeclarativeModelBuilder {
            topology,
            alone,
            all_pairs: HashSet::new(),
            rate_pairs: HashSet::new(),
            hears: HashSet::new(),
        }
    }

    fn pair_conflicts(&self, a: LinkId, ra: Rate, b: LinkId, rb: Rate) -> bool {
        let (i, j) = (a.index(), b.index());
        let key = if i <= j { (i, j) } else { (j, i) };
        if self.all_pairs.contains(&key) {
            return true;
        }
        let rated = if i <= j {
            (i, rate_key(ra), j, rate_key(rb))
        } else {
            (j, rate_key(rb), i, rate_key(ra))
        };
        self.rate_pairs.contains(&rated)
    }
}

impl DeclarativeModelBuilder {
    /// Declares the rates `link` supports alone (any order; stored
    /// descending).
    ///
    /// # Panics
    ///
    /// Panics if `link` is foreign or a rate is zero.
    #[must_use]
    pub fn alone_rates(mut self, link: LinkId, rates: &[Rate]) -> Self {
        self.check_link(link);
        assert!(
            rates.iter().all(|r| !r.is_zero()),
            "alone rates must be non-zero"
        );
        let mut rs = rates.to_vec();
        rs.sort_by(|a, b| b.partial_cmp(a).expect("rates are finite"));
        rs.dedup();
        self.alone[link.index()] = rs;
        self
    }

    /// Declares that `a` and `b` conflict at **every** rate combination.
    ///
    /// # Panics
    ///
    /// Panics if either link is foreign.
    #[must_use]
    pub fn conflict_all(mut self, a: LinkId, b: LinkId) -> Self {
        self.check_link(a);
        self.check_link(b);
        let (i, j) = (a.index().min(b.index()), a.index().max(b.index()));
        self.all_pairs.insert((i, j));
        self
    }

    /// Declares that `(a, ra)` and `(b, rb)` conflict — "not both
    /// transmissions will be successful" for exactly that rate pair.
    ///
    /// # Panics
    ///
    /// Panics if either link is foreign.
    #[must_use]
    pub fn conflict_at(mut self, a: LinkId, ra: Rate, b: LinkId, rb: Rate) -> Self {
        self.check_link(a);
        self.check_link(b);
        let entry = if a.index() <= b.index() {
            (a.index(), rate_key(ra), b.index(), rate_key(rb))
        } else {
            (b.index(), rate_key(rb), a.index(), rate_key(ra))
        };
        self.rate_pairs.insert(entry);
        self
    }

    /// Declares that `node` hears (senses busy during) transmissions on
    /// `link`, in addition to the link's own endpoints.
    ///
    /// # Panics
    ///
    /// Panics if the node or link is foreign.
    #[must_use]
    pub fn hears(mut self, node: NodeId, link: LinkId) -> Self {
        assert!(
            self.topology.node(node).is_ok(),
            "{}",
            TopologyError::UnknownNode(node)
        );
        self.check_link(link);
        self.hears.insert((node.index(), link.index()));
        self
    }

    /// Finishes the model.
    pub fn build(self) -> DeclarativeModel {
        DeclarativeModel {
            topology: self.topology,
            alone: self.alone,
            all_pairs: self.all_pairs,
            rate_pairs: self.rate_pairs,
            hears: self.hears,
        }
    }

    fn check_link(&self, link: LinkId) {
        assert!(
            self.topology.link(link).is_ok(),
            "{}",
            TopologyError::UnknownLink(link)
        );
    }
}

impl LinkRateModel for DeclarativeModel {
    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn alone_rates(&self, link: LinkId) -> Vec<Rate> {
        self.alone.get(link.index()).cloned().unwrap_or_default()
    }

    fn admissible(&self, assignment: &[(LinkId, Rate)]) -> bool {
        for (i, &(a, ra)) in assignment.iter().enumerate() {
            if !self.alone.get(a.index()).is_some_and(|rs| rs.contains(&ra)) {
                return false;
            }
            for &(b, rb) in &assignment[i + 1..] {
                if self.pair_conflicts(a, ra, b, rb) {
                    return false;
                }
            }
        }
        true
    }

    fn node_hears(&self, node: NodeId, link: LinkId) -> bool {
        let Ok(l) = self.topology.link(link) else {
            return false;
        };
        l.tx() == node || l.rx() == node || self.hears.contains(&(node.index(), link.index()))
    }

    fn pairwise_admissibility_exact(&self) -> bool {
        // `admissible` is exactly "every rate is listed alone and no pair
        // conflicts" — there is no joint (additive) term.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> (Rate, Rate) {
        (Rate::from_mbps(54.0), Rate::from_mbps(36.0))
    }

    /// Two links on a 3-node chain with a rate-dependent conflict.
    fn two_link_model() -> (DeclarativeModel, LinkId, LinkId) {
        let (r54, r36) = rates();
        let mut t = Topology::new();
        let n: Vec<_> = (0..4).map(|i| t.add_node(f64::from(i), 0.0)).collect();
        let l1 = t.add_link(n[0], n[1]).unwrap();
        let l2 = t.add_link(n[2], n[3]).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(l1, &[r36, r54])
            .alone_rates(l2, &[r54, r36])
            .conflict_at(l1, r54, l2, r54)
            .build();
        (m, l1, l2)
    }

    #[test]
    fn rate_dependent_conflict() {
        let (m, l1, l2) = two_link_model();
        let (r54, r36) = rates();
        assert!(!m.admissible(&[(l1, r54), (l2, r54)]));
        assert!(m.admissible(&[(l1, r36), (l2, r54)]));
        assert!(m.admissible(&[(l1, r54), (l2, r36)]));
        assert!(m.admissible(&[(l1, r36), (l2, r36)]));
    }

    #[test]
    fn conflict_all_beats_every_rate_pair() {
        let (r54, r36) = rates();
        let mut t = Topology::new();
        let n: Vec<_> = (0..4).map(|i| t.add_node(f64::from(i), 0.0)).collect();
        let l1 = t.add_link(n[0], n[1]).unwrap();
        let l2 = t.add_link(n[2], n[3]).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(l1, &[r54, r36])
            .alone_rates(l2, &[r54, r36])
            .conflict_all(l1, l2)
            .build();
        for ra in [r54, r36] {
            for rb in [r54, r36] {
                assert!(!m.admissible(&[(l1, ra), (l2, rb)]));
            }
        }
    }

    #[test]
    fn alone_rates_are_sorted_and_deduped() {
        let (m, l1, _) = two_link_model();
        let rs: Vec<f64> = m.alone_rates(l1).iter().map(|r| r.as_mbps()).collect();
        assert_eq!(rs, vec![54.0, 36.0]);
    }

    #[test]
    fn unlisted_rates_are_inadmissible() {
        let (m, l1, _) = two_link_model();
        assert!(!m.admissible(&[(l1, Rate::from_mbps(18.0))]));
        assert!(!m.admissible(&[(l1, Rate::ZERO)]));
    }

    #[test]
    fn conflicts_helper_is_symmetric() {
        let (m, l1, l2) = two_link_model();
        let (r54, _) = rates();
        assert!(m.conflicts((l1, r54), (l2, r54)));
        assert!(m.conflicts((l2, r54), (l1, r54)));
    }

    #[test]
    fn hearing_defaults_to_participants_plus_declared() {
        let (r54, _) = rates();
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 0.0);
        let c = t.add_node(2.0, 0.0);
        let ab = t.add_link(a, b).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(ab, &[r54])
            .hears(c, ab)
            .build();
        assert!(m.node_hears(a, ab));
        assert!(m.node_hears(b, ab));
        assert!(m.node_hears(c, ab));
    }

    #[test]
    fn dead_links_have_no_rates() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 0.0);
        let ab = t.add_link(a, b).unwrap();
        let m = DeclarativeModel::builder(t).build();
        assert!(m.alone_rates(ab).is_empty());
        assert!(!m.admissible(&[(ab, Rate::from_mbps(6.0))]));
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn foreign_link_panics_in_builder() {
        let t = Topology::new();
        let _ =
            DeclarativeModel::builder(t).conflict_all(LinkId::from_index(0), LinkId::from_index(1));
    }
}
