//! Nodes, links and the topology container.

use crate::error::TopologyError;
use crate::ids::{LinkId, NodeId};

/// A position in the plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance_to(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// A node: an identifier plus a position.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Node {
    id: NodeId,
    position: Point,
}

impl Node {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's position.
    pub fn position(&self) -> Point {
        self.position
    }
}

/// A directed link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Link {
    id: LinkId,
    tx: NodeId,
    rx: NodeId,
}

impl Link {
    /// This link's id.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The transmitting node.
    pub fn tx(&self) -> NodeId {
        self.tx
    }

    /// The receiving node.
    pub fn rx(&self) -> NodeId {
        self.rx
    }
}

/// A collection of positioned nodes and directed links.
///
/// Nodes and links receive dense ids in insertion order. The topology is
/// purely structural: rates and interference live in a
/// [`LinkRateModel`](crate::LinkRateModel) built on top of it.
///
/// ```
/// use awb_net::Topology;
/// let mut t = Topology::new();
/// let a = t.add_node(0.0, 0.0);
/// let b = t.add_node(100.0, 0.0);
/// let ab = t.add_link(a, b)?;
/// assert_eq!(t.link(ab)?.tx(), a);
/// assert!((t.link_length(ab)? - 100.0).abs() < 1e-12);
/// # Ok::<(), awb_net::TopologyError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a node at `(x, y)` metres and returns its id.
    pub fn add_node(&mut self, x: f64, y: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            position: Point::new(x, y),
        });
        id
    }

    /// Adds a directed link from `tx` to `rx`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownNode`] if either endpoint is foreign,
    /// [`TopologyError::SelfLoop`] if `tx == rx`, and
    /// [`TopologyError::DuplicateLink`] if the link already exists.
    pub fn add_link(&mut self, tx: NodeId, rx: NodeId) -> Result<LinkId, TopologyError> {
        self.check_node(tx)?;
        self.check_node(rx)?;
        if tx == rx {
            return Err(TopologyError::SelfLoop(tx));
        }
        if self.link_between(tx, rx).is_some() {
            return Err(TopologyError::DuplicateLink(tx, rx));
        }
        let id = LinkId(self.links.len());
        self.links.push(Link { id, tx, rx });
        Ok(id)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The node with id `id`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownNode`] for foreign ids.
    pub fn node(&self, id: NodeId) -> Result<&Node, TopologyError> {
        self.nodes.get(id.0).ok_or(TopologyError::UnknownNode(id))
    }

    /// The link with id `id`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownLink`] for foreign ids.
    pub fn link(&self, id: LinkId) -> Result<&Link, TopologyError> {
        self.links.get(id.0).ok_or(TopologyError::UnknownLink(id))
    }

    /// Iterates over all nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Iterates over all links in id order.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// The link from `tx` to `rx`, if it exists.
    pub fn link_between(&self, tx: NodeId, rx: NodeId) -> Option<LinkId> {
        self.links
            .iter()
            .find(|l| l.tx == tx && l.rx == rx)
            .map(|l| l.id)
    }

    /// Links transmitted by `node`.
    pub fn links_from(&self, node: NodeId) -> impl Iterator<Item = &Link> {
        self.links.iter().filter(move |l| l.tx == node)
    }

    /// Links received by `node`.
    pub fn links_to(&self, node: NodeId) -> impl Iterator<Item = &Link> {
        self.links.iter().filter(move |l| l.rx == node)
    }

    /// Euclidean distance between two nodes.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownNode`] for foreign ids.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Result<f64, TopologyError> {
        Ok(self
            .node(a)?
            .position()
            .distance_to(self.node(b)?.position()))
    }

    /// Length of a link in metres.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownLink`] for foreign ids.
    pub fn link_length(&self, id: LinkId) -> Result<f64, TopologyError> {
        let l = self.link(id)?;
        self.distance(l.tx, l.rx)
    }

    fn check_node(&self, id: NodeId) -> Result<(), TopologyError> {
        if id.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(TopologyError::UnknownNode(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_nodes() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(3.0, 4.0);
        let c = t.add_node(0.0, 10.0);
        (t, a, b, c)
    }

    #[test]
    fn point_distance_is_euclidean() {
        assert_eq!(Point::new(0.0, 0.0).distance_to(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn add_and_query_links() {
        let (mut t, a, b, c) = three_nodes();
        let ab = t.add_link(a, b).unwrap();
        let bc = t.add_link(b, c).unwrap();
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.link_between(a, b), Some(ab));
        assert_eq!(t.link_between(b, a), None); // directed
        assert_eq!(t.links_from(b).count(), 1);
        assert_eq!(t.links_to(b).count(), 1);
        assert_eq!(t.link(bc).unwrap().rx(), c);
        assert!((t.link_length(ab).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_are_rejected() {
        let (mut t, a, _, _) = three_nodes();
        assert_eq!(t.add_link(a, a), Err(TopologyError::SelfLoop(a)));
    }

    #[test]
    fn duplicate_links_are_rejected() {
        let (mut t, a, b, _) = three_nodes();
        t.add_link(a, b).unwrap();
        assert_eq!(t.add_link(a, b), Err(TopologyError::DuplicateLink(a, b)));
        // The reverse direction is a different link.
        assert!(t.add_link(b, a).is_ok());
    }

    #[test]
    fn foreign_ids_error() {
        let (t, ..) = three_nodes();
        let ghost = NodeId::from_index(99);
        assert!(matches!(t.node(ghost), Err(TopologyError::UnknownNode(_))));
        let ghost_link = LinkId::from_index(99);
        assert!(matches!(
            t.link(ghost_link),
            Err(TopologyError::UnknownLink(_))
        ));
    }

    #[test]
    fn iterators_visit_in_id_order() {
        let (mut t, a, b, c) = three_nodes();
        t.add_link(a, b).unwrap();
        t.add_link(b, c).unwrap();
        let ids: Vec<usize> = t.links().map(|l| l.id().index()).collect();
        assert_eq!(ids, vec![0, 1]);
        let nids: Vec<usize> = t.nodes().map(|n| n.id().index()).collect();
        assert_eq!(nids, vec![0, 1, 2]);
    }
}
