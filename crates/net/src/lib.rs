//! Network substrate for the `awb` workspace: node/link topologies, paths,
//! and the interference models under which rate-coupled independent sets and
//! cliques are defined.
//!
//! Two [`LinkRateModel`] implementations are provided:
//!
//! * [`SinrModel`] — the geometric physical model of the paper's evaluation:
//!   positions, log-distance path loss, per-rate receiver sensitivities and
//!   SINR thresholds (Eq. 1/Eq. 3 via [`awb_phy::Phy`]).
//! * [`DeclarativeModel`] — explicitly stated per-rate conflict relations,
//!   used for the paper's hand-constructed Scenario I and Scenario II
//!   topologies where interference is *postulated*, not derived from
//!   geometry.
//!
//! # Example
//!
//! ```
//! use awb_net::{SinrModel, Topology, LinkRateModel};
//! use awb_phy::Phy;
//!
//! let mut t = Topology::new();
//! let a = t.add_node(0.0, 0.0);
//! let b = t.add_node(50.0, 0.0);
//! let ab = t.add_link(a, b)?;
//! let model = SinrModel::new(t, Phy::paper_default());
//! // A 50 m link supports all four 802.11a rates alone.
//! assert_eq!(model.alone_rates(ab).len(), 4);
//! # Ok::<(), awb_net::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod declarative;
mod delta;
mod error;
mod geometric;
mod ids;
mod model;
mod path;
mod snapshot;
mod topology;

pub use capture::AdditiveCapture;
pub use declarative::{DeclarativeModel, DeclarativeModelBuilder};
pub use delta::TopologyDelta;
pub use error::{PathError, TopologyError};
pub use geometric::SinrModel;
pub use ids::{LinkId, NodeId};
pub use model::LinkRateModel;
pub use path::Path;
pub use snapshot::ConflictSnapshot;
pub use topology::{Link, Node, Point, Topology};
