//! Multihop paths over a topology.

use crate::error::PathError;
use crate::ids::{LinkId, NodeId};
use crate::topology::Topology;
use std::fmt;

/// An ordered sequence of links forming a multihop path.
///
/// Construction validates against a [`Topology`]: links must exist, be
/// distinct, and chain head-to-tail (the receiver of hop *i* is the
/// transmitter of hop *i+1*).
///
/// ```
/// use awb_net::{Path, Topology};
/// let mut t = Topology::new();
/// let a = t.add_node(0.0, 0.0);
/// let b = t.add_node(50.0, 0.0);
/// let c = t.add_node(100.0, 0.0);
/// let ab = t.add_link(a, b)?;
/// let bc = t.add_link(b, c)?;
/// let p = Path::new(&t, vec![ab, bc])?;
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.source(&t)?, a);
/// assert_eq!(p.destination(&t)?, c);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Path {
    links: Vec<LinkId>,
}

impl Path {
    /// Builds a path from an ordered link sequence, validating connectivity.
    ///
    /// # Errors
    ///
    /// [`PathError::Empty`], [`PathError::UnknownLink`],
    /// [`PathError::RepeatedLink`], or [`PathError::Disconnected`].
    pub fn new(topology: &Topology, links: Vec<LinkId>) -> Result<Path, PathError> {
        if links.is_empty() {
            return Err(PathError::Empty);
        }
        for (i, &l) in links.iter().enumerate() {
            topology.link(l).map_err(|_| PathError::UnknownLink(l))?;
            if links[..i].contains(&l) {
                return Err(PathError::RepeatedLink(l));
            }
        }
        for w in links.windows(2) {
            let a = topology.link(w[0]).expect("validated above");
            let b = topology.link(w[1]).expect("validated above");
            if a.rx() != b.tx() {
                return Err(PathError::Disconnected {
                    from: w[0],
                    to: w[1],
                });
            }
        }
        Ok(Path { links })
    }

    /// Builds a path through a node sequence, looking links up in the
    /// topology.
    ///
    /// # Errors
    ///
    /// [`PathError::Empty`] for fewer than two nodes and
    /// [`PathError::MissingLink`] when two consecutive nodes are not linked;
    /// otherwise as [`Path::new`].
    pub fn from_nodes(topology: &Topology, nodes: &[NodeId]) -> Result<Path, PathError> {
        if nodes.len() < 2 {
            return Err(PathError::Empty);
        }
        let mut links = Vec::with_capacity(nodes.len() - 1);
        for w in nodes.windows(2) {
            let l = topology
                .link_between(w[0], w[1])
                .ok_or(PathError::MissingLink(w[0], w[1]))?;
            links.push(l);
        }
        Path::new(topology, links)
    }

    /// The links in hop order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the path has no hops (never true for a constructed path).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether `link` lies on this path.
    pub fn contains(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// The source node.
    ///
    /// # Errors
    ///
    /// Fails only if the path was built for a different topology.
    pub fn source(&self, topology: &Topology) -> Result<NodeId, PathError> {
        let first = self.links.first().ok_or(PathError::Empty)?;
        Ok(topology
            .link(*first)
            .map_err(|_| PathError::UnknownLink(*first))?
            .tx())
    }

    /// The destination node.
    ///
    /// # Errors
    ///
    /// Fails only if the path was built for a different topology.
    pub fn destination(&self, topology: &Topology) -> Result<NodeId, PathError> {
        let last = self.links.last().ok_or(PathError::Empty)?;
        Ok(topology
            .link(*last)
            .map_err(|_| PathError::UnknownLink(*last))?
            .rx())
    }

    /// All nodes visited, source first.
    ///
    /// # Errors
    ///
    /// Fails only if the path was built for a different topology.
    pub fn nodes(&self, topology: &Topology) -> Result<Vec<NodeId>, PathError> {
        let mut out = Vec::with_capacity(self.links.len() + 1);
        out.push(self.source(topology)?);
        for &l in &self.links {
            out.push(
                topology
                    .link(l)
                    .map_err(|_| PathError::UnknownLink(l))?
                    .rx(),
            );
        }
        Ok(out)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for l in &self.links {
            if !first {
                write!(f, "->")?;
            }
            write!(f, "{l}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (Topology, Vec<NodeId>, Vec<LinkId>) {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..n).map(|i| t.add_node(i as f64 * 50.0, 0.0)).collect();
        let links: Vec<LinkId> = nodes
            .windows(2)
            .map(|w| t.add_link(w[0], w[1]).unwrap())
            .collect();
        (t, nodes, links)
    }

    #[test]
    fn valid_chain_path() {
        let (t, nodes, links) = chain(4);
        let p = Path::new(&t, links.clone()).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.nodes(&t).unwrap(), nodes);
        assert!(p.contains(links[1]));
        assert_eq!(p.to_string(), "L0->L1->L2");
    }

    #[test]
    fn from_nodes_finds_links() {
        let (t, nodes, links) = chain(3);
        let p = Path::from_nodes(&t, &nodes).unwrap();
        assert_eq!(p.links(), &links[..]);
    }

    #[test]
    fn disconnected_links_are_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 0.0);
        let c = t.add_node(2.0, 0.0);
        let d = t.add_node(3.0, 0.0);
        let ab = t.add_link(a, b).unwrap();
        let cd = t.add_link(c, d).unwrap();
        assert_eq!(
            Path::new(&t, vec![ab, cd]),
            Err(PathError::Disconnected { from: ab, to: cd })
        );
    }

    #[test]
    fn empty_and_repeated_paths_are_rejected() {
        let (t, _, links) = chain(3);
        assert_eq!(Path::new(&t, vec![]), Err(PathError::Empty));
        assert_eq!(
            Path::new(&t, vec![links[0], links[0]]),
            Err(PathError::RepeatedLink(links[0]))
        );
    }

    #[test]
    fn missing_link_in_node_sequence() {
        let (t, nodes, _) = chain(3);
        let err = Path::from_nodes(&t, &[nodes[0], nodes[2]]);
        assert_eq!(err, Err(PathError::MissingLink(nodes[0], nodes[2])));
    }

    #[test]
    fn single_hop_path() {
        let (t, nodes, links) = chain(2);
        let p = Path::new(&t, vec![links[0]]).unwrap();
        assert_eq!(p.source(&t).unwrap(), nodes[0]);
        assert_eq!(p.destination(&t).unwrap(), nodes[1]);
        assert!(!p.is_empty());
    }
}
