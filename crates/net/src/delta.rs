//! Topology deltas: the declarative description of *what changed* between
//! two epochs of a dynamic topology.
//!
//! A [`TopologyDelta`] names the nodes that moved, joined or left and the
//! links whose rate capabilities changed (plus structural link additions and
//! removals). It is the input of the incremental recompilation path in
//! `awb-core` (`CompiledInstance::apply_delta`): only conflict components
//! touched by [`TopologyDelta::touched_links`] are recompiled; everything
//! else is structurally reused.
//!
//! # Honesty contract
//!
//! Incremental recompilation trusts the delta: a component with no touched
//! member is reused **without** re-deriving its conflict structure. A delta
//! that under-reports changes (e.g. omits a moved node) therefore yields a
//! stale compiled state. [`TopologyDelta::between`] derives an honest delta
//! from two model snapshots by diffing node positions and per-link alone
//! rates; for [`DeclarativeModel`](crate::DeclarativeModel)s whose *conflict
//! statements* changed without any alone-rate change, callers must list the
//! affected links in [`rate_changed_links`](TopologyDelta::rate_changed_links)
//! themselves — position/rate diffing cannot see postulated conflicts.

use crate::ids::{LinkId, NodeId};
use crate::model::LinkRateModel;
use crate::topology::Topology;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_u64(hash: u64, value: u64) -> u64 {
    let mut h = hash;
    for byte in value.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A declarative description of the change between two topology epochs, in
/// terms of stable node and link ids.
///
/// Construct directly (the fields are public) or derive from two model
/// snapshots with [`TopologyDelta::between`]. Field order and duplicates are
/// irrelevant: every consumer normalizes (sorts and deduplicates) first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopologyDelta {
    /// Nodes whose position changed.
    pub moved_nodes: Vec<NodeId>,
    /// Nodes that exist in the new epoch but not the old one.
    pub joined_nodes: Vec<NodeId>,
    /// Nodes that exist in the old epoch but not the new one.
    pub left_nodes: Vec<NodeId>,
    /// Links whose alone-rate capability changed (including links that died
    /// — empty alone rates — or came alive).
    pub rate_changed_links: Vec<LinkId>,
    /// Links that exist in the new epoch but not the old one.
    pub added_links: Vec<LinkId>,
    /// Links that exist in the old epoch but not the new one.
    pub removed_links: Vec<LinkId>,
}

impl TopologyDelta {
    /// Whether the delta describes no change at all.
    pub fn is_empty(&self) -> bool {
        self.moved_nodes.is_empty()
            && self.joined_nodes.is_empty()
            && self.left_nodes.is_empty()
            && self.rate_changed_links.is_empty()
            && self.added_links.is_empty()
            && self.removed_links.is_empty()
    }

    /// Sorts and deduplicates every field in place.
    pub fn normalize(&mut self) {
        fn norm<T: Ord>(v: &mut Vec<T>) {
            v.sort_unstable();
            v.dedup();
        }
        norm(&mut self.moved_nodes);
        norm(&mut self.joined_nodes);
        norm(&mut self.left_nodes);
        norm(&mut self.rate_changed_links);
        norm(&mut self.added_links);
        norm(&mut self.removed_links);
    }

    /// Derives the delta between two snapshots of the *same logical network*
    /// under a stable id scheme: node `i` of `old` and node `i` of `new` are
    /// the same node, likewise for links.
    ///
    /// Nodes are diffed by position (exact float comparison — an unmoved
    /// node carried forward bit-identically does not register); links are
    /// diffed by their alone-rate lists. Indices beyond the other snapshot's
    /// count become joins/leaves (nodes) or additions/removals (links).
    ///
    /// This is exact for geometry-derived models
    /// ([`SinrModel`](crate::SinrModel)): there, conflicts are a pure
    /// function of positions and the radio, both of which the diff observes.
    /// See the module docs for the declarative-model caveat.
    pub fn between<A: LinkRateModel, B: LinkRateModel>(old: &A, new: &B) -> TopologyDelta {
        let (ot, nt) = (old.topology(), new.topology());
        let mut delta = TopologyDelta::default();
        let nodes = ot.num_nodes().max(nt.num_nodes());
        for i in 0..nodes {
            let id = NodeId::from_index(i);
            match (ot.node(id), nt.node(id)) {
                (Ok(a), Ok(b)) => {
                    if a.position() != b.position() {
                        delta.moved_nodes.push(id);
                    }
                }
                (Err(_), Ok(_)) => delta.joined_nodes.push(id),
                (Ok(_), Err(_)) => delta.left_nodes.push(id),
                (Err(_), Err(_)) => {}
            }
        }
        let links = ot.num_links().max(nt.num_links());
        for i in 0..links {
            let id = LinkId::from_index(i);
            match (ot.link(id), nt.link(id)) {
                (Ok(_), Ok(_)) => {
                    if old.alone_rates(id) != new.alone_rates(id) {
                        delta.rate_changed_links.push(id);
                    }
                }
                (Err(_), Ok(_)) => delta.added_links.push(id),
                (Ok(_), Err(_)) => delta.removed_links.push(id),
                (Err(_), Err(_)) => {}
            }
        }
        delta.normalize();
        delta
    }

    /// Every link of `topology` whose compiled behavior the delta may have
    /// affected: links incident to a moved/joined/left node, plus the
    /// explicitly listed rate-changed, added and removed links. Sorted and
    /// deduplicated.
    ///
    /// This deliberately over-approximates for additive-interference models:
    /// a link is dirty if *either endpoint's node* changed, even when the
    /// change did not actually alter any admissibility answer.
    pub fn touched_links(&self, topology: &Topology) -> Vec<LinkId> {
        let mut nodes: Vec<NodeId> = self
            .moved_nodes
            .iter()
            .chain(&self.joined_nodes)
            .chain(&self.left_nodes)
            .copied()
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let mut out: Vec<LinkId> = self
            .rate_changed_links
            .iter()
            .chain(&self.added_links)
            .chain(&self.removed_links)
            .copied()
            .collect();
        for link in topology.links() {
            if nodes.binary_search(&link.tx()).is_ok() || nodes.binary_search(&link.rx()).is_ok() {
                out.push(link.id());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A content hash of the normalized delta (FNV-1a over every field) —
    /// the key material for delta-chained caching: a cache entry for
    /// `(instance, delta)` is keyed off
    /// `hash(instance_hash, delta.content_hash())`, so replaying the same
    /// delta coalesces.
    pub fn content_hash(&self) -> u64 {
        let mut d = self.clone();
        d.normalize();
        let mut h = FNV_OFFSET;
        for (tag, nodes) in [
            (1u64, &d.moved_nodes),
            (2, &d.joined_nodes),
            (3, &d.left_nodes),
        ] {
            h = fnv1a_u64(h, tag);
            h = fnv1a_u64(h, nodes.len() as u64);
            for n in nodes {
                h = fnv1a_u64(h, n.index() as u64);
            }
        }
        for (tag, links) in [
            (4u64, &d.rate_changed_links),
            (5, &d.added_links),
            (6, &d.removed_links),
        ] {
            h = fnv1a_u64(h, tag);
            h = fnv1a_u64(h, links.len() as u64);
            for l in links {
                h = fnv1a_u64(h, l.index() as u64);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::declarative::DeclarativeModel;
    use crate::geometric::SinrModel;
    use awb_phy::{Phy, Rate};

    fn two_link_topology(gap: f64) -> Topology {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(50.0, 0.0);
        let c = t.add_node(0.0, gap);
        let d = t.add_node(50.0, gap);
        t.add_link(a, b).unwrap();
        t.add_link(c, d).unwrap();
        t
    }

    #[test]
    fn between_detects_moves_and_rate_changes() {
        let old = SinrModel::new(two_link_topology(1000.0), Phy::paper_default());
        // Move node 2 closer: link 1 shortens, its alone rates change.
        let mut t = Topology::new();
        t.add_node(0.0, 0.0);
        t.add_node(50.0, 0.0);
        t.add_node(0.0, 200.0);
        t.add_node(50.0, 1000.0);
        t.add_link(NodeId::from_index(0), NodeId::from_index(1))
            .unwrap();
        t.add_link(NodeId::from_index(2), NodeId::from_index(3))
            .unwrap();
        let new = SinrModel::new(t, Phy::paper_default());
        let delta = TopologyDelta::between(&old, &new);
        assert_eq!(delta.moved_nodes, vec![NodeId::from_index(2)]);
        assert!(delta.joined_nodes.is_empty() && delta.left_nodes.is_empty());
        // Link 1 went from a 50 m link to an 806 m one: rates changed.
        assert_eq!(delta.rate_changed_links, vec![LinkId::from_index(1)]);
        assert!(!delta.is_empty());
    }

    #[test]
    fn between_identical_models_is_empty() {
        let m = SinrModel::new(two_link_topology(300.0), Phy::paper_default());
        let delta = TopologyDelta::between(&m, &m.clone());
        assert!(delta.is_empty());
        assert_eq!(
            delta.content_hash(),
            TopologyDelta::default().content_hash()
        );
    }

    #[test]
    fn between_detects_joins_and_additions() {
        let old = SinrModel::new(two_link_topology(300.0), Phy::paper_default());
        let mut t = two_link_topology(300.0);
        let e = t.add_node(25.0, 150.0);
        t.add_link(NodeId::from_index(0), e).unwrap();
        let new = SinrModel::new(t, Phy::paper_default());
        let delta = TopologyDelta::between(&old, &new);
        assert_eq!(delta.joined_nodes, vec![e]);
        assert_eq!(delta.added_links, vec![LinkId::from_index(2)]);
        // Reverse direction: leaves and removals.
        let rev = TopologyDelta::between(&new, &old);
        assert_eq!(rev.left_nodes, vec![e]);
        assert_eq!(rev.removed_links, vec![LinkId::from_index(2)]);
    }

    #[test]
    fn touched_links_cover_incident_links_and_explicit_lists() {
        let t = two_link_topology(300.0);
        let delta = TopologyDelta {
            moved_nodes: vec![NodeId::from_index(3)],
            rate_changed_links: vec![LinkId::from_index(0)],
            ..TopologyDelta::default()
        };
        // Node 3 is the receiver of link 1; link 0 is listed explicitly.
        assert_eq!(
            delta.touched_links(&t),
            vec![LinkId::from_index(0), LinkId::from_index(1)]
        );
    }

    #[test]
    fn content_hash_ignores_order_and_duplicates() {
        let a = TopologyDelta {
            moved_nodes: vec![NodeId::from_index(2), NodeId::from_index(1)],
            rate_changed_links: vec![LinkId::from_index(5), LinkId::from_index(5)],
            ..TopologyDelta::default()
        };
        let b = TopologyDelta {
            moved_nodes: vec![NodeId::from_index(1), NodeId::from_index(2)],
            rate_changed_links: vec![LinkId::from_index(5)],
            ..TopologyDelta::default()
        };
        assert_eq!(a.content_hash(), b.content_hash());
        // Moving a field's content to a different field changes the hash.
        let c = TopologyDelta {
            joined_nodes: vec![NodeId::from_index(1), NodeId::from_index(2)],
            rate_changed_links: vec![LinkId::from_index(5)],
            ..TopologyDelta::default()
        };
        assert_ne!(b.content_hash(), c.content_hash());
    }

    #[test]
    fn declarative_rate_edits_are_visible_conflict_edits_are_not() {
        let t = two_link_topology(300.0);
        let (l0, l1) = (LinkId::from_index(0), LinkId::from_index(1));
        let r54 = Rate::from_mbps(54.0);
        let r36 = Rate::from_mbps(36.0);
        let old = DeclarativeModel::builder(t.clone())
            .alone_rates(l0, &[r54])
            .alone_rates(l1, &[r54])
            .build();
        let rates_edited = DeclarativeModel::builder(t.clone())
            .alone_rates(l0, &[r54, r36])
            .alone_rates(l1, &[r54])
            .build();
        assert_eq!(
            TopologyDelta::between(&old, &rates_edited).rate_changed_links,
            vec![l0]
        );
        // The documented blind spot: a pure conflict edit diffs as empty.
        let conflict_edited = DeclarativeModel::builder(t)
            .alone_rates(l0, &[r54])
            .alone_rates(l1, &[r54])
            .conflict_all(l0, l1)
            .build();
        assert!(TopologyDelta::between(&old, &conflict_edited).is_empty());
    }
}
