//! Bulk conflict/rate snapshots: the one-time compilation input for fast
//! set-enumeration engines.
//!
//! Enumeration engines (e.g. `awb-sets`' compiled bitset engine) want the
//! whole pairwise conflict structure of a link universe up front, as flat
//! arrays, instead of calling back into [`LinkRateModel`] at every search
//! node. [`ConflictSnapshot`] is that bulk API: one call walks the model
//! once, and everything after it is plain data — `Send + Sync`, no model
//! borrows, safe to ship across worker threads.

use crate::ids::LinkId;
use crate::model::LinkRateModel;
use awb_phy::Rate;

/// A flattened snapshot of a model's per-link rates and pairwise couple
/// conflicts over a link universe.
///
/// Links of the universe with no alone rate (dead links) are dropped; the
/// surviving *live* links keep the universe's order. Every `(link, rate)`
/// combination of a live link is a **couple**, numbered `0..num_couples()`
/// grouped by link with rates descending — the same visit order the generic
/// backtracker uses, so engines built on the snapshot can reproduce its
/// output byte for byte.
///
/// The pairwise matrix is *exact* admissibility only when
/// [`pairwise_exact`](Self::pairwise_exact) is true (declarative models);
/// for additive-interference models it is still a **sound pruner**: a pair
/// that conflicts can never appear together in an admissible set, because
/// admissibility is downward closed.
#[derive(Debug, Clone)]
pub struct ConflictSnapshot {
    links: Vec<LinkId>,
    rates: Vec<Vec<Rate>>,
    couples: Vec<(usize, Rate)>,
    offsets: Vec<usize>,
    conflicts: Vec<bool>,
    pairwise_exact: bool,
    rate_independent: bool,
}

impl ConflictSnapshot {
    /// Walks `model` once and snapshots the conflict structure of
    /// `universe`. O(C²) pairwise conflict queries for C couples.
    pub fn build<M: LinkRateModel + ?Sized>(model: &M, universe: &[LinkId]) -> ConflictSnapshot {
        let mut links = Vec::new();
        let mut rates: Vec<Vec<Rate>> = Vec::new();
        for &l in universe {
            let rs = model.alone_rates(l);
            if !rs.is_empty() {
                links.push(l);
                rates.push(rs);
            }
        }
        let mut couples = Vec::new();
        let mut offsets = vec![0usize];
        for (i, rs) in rates.iter().enumerate() {
            for &r in rs {
                couples.push((i, r));
            }
            offsets.push(couples.len());
        }
        let c = couples.len();
        let mut conflicts = vec![false; c * c];
        for a in 0..c {
            let (la, ra) = couples[a];
            for b in (a + 1)..c {
                let (lb, rb) = couples[b];
                // Two couples of the same link can never transmit
                // concurrently (a link uses one rate at a time).
                let x = la == lb || model.conflicts((links[la], ra), (links[lb], rb));
                conflicts[a * c + b] = x;
                conflicts[b * c + a] = x;
            }
        }
        ConflictSnapshot {
            links,
            rates,
            couples,
            offsets,
            conflicts,
            pairwise_exact: model.pairwise_admissibility_exact(),
            rate_independent: model.rate_independent_interference(),
        }
    }

    /// The live links of the universe, in universe order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Descending alone rates of live link `i`.
    pub fn rates_of(&self, i: usize) -> &[Rate] {
        &self.rates[i]
    }

    /// Number of couples.
    pub fn num_couples(&self) -> usize {
        self.couples.len()
    }

    /// Couple `c` as a `(live link index, rate)` pair.
    pub fn couple(&self, c: usize) -> (usize, Rate) {
        self.couples[c]
    }

    /// The couple-id range of live link `i` (rates descending).
    pub fn couples_of(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Whether couples `a` and `b` conflict (same-link pairs always do; the
    /// diagonal is `false`).
    pub fn conflict(&self, a: usize, b: usize) -> bool {
        self.conflicts[a * self.couples.len() + b]
    }

    /// Whether pairwise conflict-freedom is *equivalent* to joint
    /// admissibility for the snapshotted model.
    pub fn pairwise_exact(&self) -> bool {
        self.pairwise_exact
    }

    /// Mirror of [`LinkRateModel::rate_independent_interference`].
    pub fn rate_independent(&self) -> bool {
        self.rate_independent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::declarative::DeclarativeModel;
    use crate::topology::Topology;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    #[test]
    fn snapshot_reflects_declared_conflicts_and_drops_dead_links() {
        let mut t = Topology::new();
        let n: Vec<_> = (0..6).map(|i| t.add_node(i as f64 * 10.0, 0.0)).collect();
        let l0 = t.add_link(n[0], n[1]).unwrap();
        let l1 = t.add_link(n[2], n[3]).unwrap();
        let dead = t.add_link(n[4], n[5]).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(l0, &[r(54.0), r(36.0)])
            .alone_rates(l1, &[r(54.0)])
            .conflict_at(l0, r(54.0), l1, r(54.0))
            .build();
        let snap = ConflictSnapshot::build(&m, &[l0, l1, dead]);
        assert_eq!(snap.links(), &[l0, l1]);
        assert!(snap.pairwise_exact());
        assert!(!snap.rate_independent());
        assert_eq!(snap.num_couples(), 3);
        assert_eq!(snap.couples_of(0), 0..2);
        assert_eq!(snap.couple(0), (0, r(54.0)));
        assert_eq!(snap.couple(1), (0, r(36.0)));
        // Same-link couples conflict; the declared rate pair conflicts; the
        // (36, 54) cross pair does not.
        assert!(snap.conflict(0, 1));
        assert!(snap.conflict(0, 2));
        assert!(!snap.conflict(1, 2));
        assert!(!snap.conflict(2, 2));
    }
}
