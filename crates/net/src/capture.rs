//! Precompiled additive-interference capture tables.
//!
//! A MAC simulator asks one question per granted transmission: *which rate
//! can this victim still decode while the rest of the granted set
//! transmits?* For additive-interference models
//! ([`SinrModel`](crate::SinrModel)) the answer is a power sum plus a walk
//! down the decode ladder; this module packages the constants of that
//! computation — per-pair received powers, per-link signal powers, the
//! noise floor and the tolerance-scaled thresholds — so a compiled slot
//! kernel can replay [`LinkRateModel::victim_max_rate`] bit-for-bit without
//! touching the model in its inner loop.

use awb_phy::CaptureThreshold;

/// The flattened capture constants of an additive-interference model over
/// its full link universe (link ids are dense indices `0..num_links`).
///
/// Replaying the victim test for link `v` against a granted set `G`
/// (visited in grant order, skipping `v` itself):
///
/// ```text
/// interference = Σ_{g ∈ G, g ≠ v} power[g * num_links + v]   // grant order!
/// sinr = signal[v] / (interference + noise)
/// max  = first step with signal[v] >= min_signal && sinr >= min_sinr
/// ```
///
/// The summation order and the precomputed tolerance-scaled thresholds make
/// this bit-identical to the model's own
/// [`victim_max_rate`](LinkRateModel::victim_max_rate), whose interference
/// sum also walks the concurrent set in its given order.
///
/// [`LinkRateModel::victim_max_rate`]: crate::LinkRateModel::victim_max_rate
#[derive(Debug, Clone, PartialEq)]
pub struct AdditiveCapture {
    /// Number of links the tables cover.
    pub num_links: usize,
    /// Row-major received powers: `power[t * num_links + r]` is the power
    /// the transmitter of link `t` lands on the receiver of link `r`.
    pub power: Vec<f64>,
    /// Per-link received signal power (`power[j * num_links + j]`).
    pub signal: Vec<f64>,
    /// Noise floor (linear units).
    pub noise: f64,
    /// The decode ladder, rates descending, shared by every link
    /// (tolerance-scaled; see [`awb_phy::Phy::capture_thresholds`]).
    pub steps: Vec<CaptureThreshold>,
}

#[cfg(test)]
mod tests {
    use crate::{LinkRateModel, SinrModel, Topology};
    use awb_phy::Phy;

    #[test]
    fn sinr_model_tables_replay_victim_max_rate() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(50.0, 0.0);
        let c = t.add_node(0.0, 200.0);
        let d = t.add_node(50.0, 200.0);
        let l1 = t.add_link(a, b).unwrap();
        let l2 = t.add_link(c, d).unwrap();
        let m = SinrModel::new(t, Phy::paper_default());
        let cap = m.additive_capture().expect("SINR model is additive");
        assert_eq!(cap.num_links, 2);
        let r2 = m.max_alone_rate(l2).unwrap();
        let expect = m.victim_max_rate(l1, &[(l1, r2), (l2, r2)]);
        // Replay by the documented recipe.
        let v = l1.index();
        let interference = cap.power[l2.index() * cap.num_links + v];
        let pr = cap.signal[v];
        let sinr = pr / (interference + cap.noise);
        let replay = cap
            .steps
            .iter()
            .find(|s| pr >= s.min_signal && sinr >= s.min_sinr)
            .map(|s| s.rate);
        assert_eq!(replay, expect);
    }
}
