//! The geometric (physical / SINR) interference model.

use crate::ids::{LinkId, NodeId};
use crate::model::LinkRateModel;
use crate::topology::Topology;
use awb_phy::{Phy, Rate};

fn fingerprint_seed() -> u64 {
    0xcbf2_9ce4_8422_2325
}

fn fingerprint_mix(hash: u64, value: u64) -> u64 {
    let mut h = hash;
    for byte in value.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Interference model derived from node positions and an [`awb_phy::Phy`].
///
/// This is the model of the paper's evaluation (§5.2): a transmission at rate
/// `r_k` over link `L_j` succeeds within a concurrent set `E` iff the
/// received power meets the rate's sensitivity **and** the SINR of Eq. 3 —
/// with interference summed over every *other* transmitter in `E` — meets the
/// rate's threshold (Eq. 1).
///
/// Distances between every transmitter and every receiver are precomputed at
/// construction, so admissibility checks are allocation-free inner loops.
#[derive(Debug, Clone)]
pub struct SinrModel {
    topology: Topology,
    phy: Phy,
    /// `tx_rx_power[t][r]` = received power at the receiver of link `r` from
    /// the transmitter of link `t`.
    tx_rx_power: Vec<Vec<f64>>,
    /// Signal power of each link (`tx_rx_power[j][j]`).
    signal: Vec<f64>,
    /// Cached alone-rate lists per link, descending.
    alone: Vec<Vec<Rate>>,
}

impl SinrModel {
    /// Builds the model; O(L²) pairwise powers are precomputed.
    ///
    /// # Panics
    ///
    /// Never panics: all link endpoints are validated by the topology.
    pub fn new(topology: Topology, phy: Phy) -> SinrModel {
        let l = topology.num_links();
        let mut tx_rx_power = vec![vec![0.0; l]; l];
        for t in topology.links() {
            for r in topology.links() {
                let d = topology
                    .distance(t.tx(), r.rx())
                    .expect("link endpoints are validated by the topology");
                tx_rx_power[t.id().index()][r.id().index()] = phy.received_power(d);
            }
        }
        let signal: Vec<f64> = (0..l).map(|j| tx_rx_power[j][j]).collect();
        let alone: Vec<Vec<Rate>> = topology
            .links()
            .map(|link| {
                let d = topology
                    .link_length(link.id())
                    .expect("link exists by construction");
                match phy.max_rate_alone(d) {
                    Some(max) => phy.rates().rates_up_to(max),
                    None => Vec::new(),
                }
            })
            .collect();
        SinrModel {
            topology,
            phy,
            tx_rx_power,
            signal,
            alone,
        }
    }

    /// The radio model.
    pub fn phy(&self) -> &Phy {
        &self.phy
    }

    /// The underlying topology.
    ///
    /// Inherent mirror of [`LinkRateModel::topology`] so callers holding a
    /// concrete model don't need the trait in scope.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Total interference power at the receiver of `link` when `active`
    /// (excluding `link` itself) transmit concurrently.
    pub fn interference_at(&self, link: LinkId, active: &[LinkId]) -> f64 {
        active
            .iter()
            .filter(|&&a| a != link)
            .map(|a| self.tx_rx_power[a.index()][link.index()])
            .sum()
    }

    /// The distance within which a *single* interfering transmitter denies
    /// `rate` to a link of length `link_length` — the radius of the Eq. 1/3
    /// SINR constraint for one aggressor. `None` when the rate is not
    /// achievable even without interference (sensitivity- or SNR-limited).
    ///
    /// Useful for reasoning about spatial reuse: with the paper's constants
    /// a 50 m link needs 54 Mbps interferers ~247 m away but 6 Mbps
    /// interferers only ~71 m away, which is exactly why rate-coupled
    /// cliques differ per rate.
    pub fn conflict_range(&self, link_length: f64, rate: Rate) -> Option<f64> {
        let spec = self.phy.rates().spec_for(rate)?;
        if link_length > spec.max_distance {
            return None; // sensitivity-limited
        }
        let pr = self.phy.received_power(link_length);
        // Need pr / (I + N) >= sinr  =>  I <= pr/sinr - N.
        let max_interference = pr / spec.sinr_linear() - self.phy.noise();
        if max_interference <= 0.0 {
            return None; // SNR-limited even without interference
        }
        Some(
            self.phy
                .pathloss()
                .range_for(self.phy.tx_power(), max_interference),
        )
    }

    /// The maximum supported rate of `link` when all links in `active`
    /// (which should include `link`) transmit concurrently; `None` when the
    /// link cannot sustain any rate — this is the `r_ij^*` of §2.3.
    pub fn max_rate_in_set(&self, link: LinkId, active: &[LinkId]) -> Option<Rate> {
        let d = self
            .topology
            .link_length(link)
            .expect("callers pass links of this topology");
        let interference = self.interference_at(link, active);
        self.phy.max_rate_under_interference(d, interference)
    }
}

impl LinkRateModel for SinrModel {
    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn alone_rates(&self, link: LinkId) -> Vec<Rate> {
        self.alone.get(link.index()).cloned().unwrap_or_default()
    }

    fn admissible(&self, assignment: &[(LinkId, Rate)]) -> bool {
        for &(link, rate) in assignment {
            if rate.is_zero() {
                return false;
            }
            let Some(spec) = self.phy.rates().spec_for(rate) else {
                return false;
            };
            let j = link.index();
            let pr = self.signal[j];
            let interference: f64 = assignment
                .iter()
                .filter(|(other, _)| *other != link)
                .map(|(other, _)| self.tx_rx_power[other.index()][j])
                .sum();
            let sensitivity = self.phy.received_power(spec.max_distance);
            let sinr = pr / (interference + self.phy.noise());
            if pr < sensitivity * (1.0 - 1e-12) || sinr < spec.sinr_linear() * (1.0 - 1e-12) {
                return false;
            }
        }
        true
    }

    fn node_hears(&self, node: NodeId, link: LinkId) -> bool {
        let Ok(l) = self.topology.link(link) else {
            return false;
        };
        // A node participating in the transmission is trivially busy.
        if l.tx() == node || l.rx() == node {
            return true;
        }
        match self.topology.distance(l.tx(), node) {
            Ok(d) => self.phy.can_sense(d),
            Err(_) => false,
        }
    }

    fn rate_independent_interference(&self) -> bool {
        // Transmit power does not depend on the chosen rate, so neither does
        // the interference term of Eq. 3.
        true
    }

    fn victim_max_rate(&self, link: LinkId, others: &[(LinkId, Rate)]) -> Option<Rate> {
        // Exact joint computation: sum the interference of every other
        // transmitter (their chosen rates are irrelevant to this victim).
        let active: Vec<LinkId> = std::iter::once(link)
            .chain(others.iter().map(|&(l, _)| l).filter(|&l| l != link))
            .collect();
        self.max_rate_in_set(link, &active)
    }

    fn link_fingerprint(&self, link: LinkId) -> u64 {
        // Everything a member link contributes to in-set admissibility is a
        // function of its endpoint positions (signal strength, injected and
        // suffered interference) given the model-wide radio, which
        // `model_fingerprint` covers.
        let Ok(l) = self.topology.link(link) else {
            return 0;
        };
        let tx = self
            .topology
            .node(l.tx())
            .expect("link endpoints are validated by the topology")
            .position();
        let rx = self
            .topology
            .node(l.rx())
            .expect("link endpoints are validated by the topology")
            .position();
        let mut h = fingerprint_seed();
        for v in [tx.x, tx.y, rx.x, rx.y] {
            h = fingerprint_mix(h, v.to_bits());
        }
        h
    }

    fn model_fingerprint(&self) -> u64 {
        let mut h = fingerprint_seed();
        for v in [
            self.phy.tx_power(),
            self.phy.noise(),
            self.phy.pathloss().exponent(),
            self.phy.carrier_sense_range(),
        ] {
            h = fingerprint_mix(h, v.to_bits());
        }
        for spec in self.phy.rates().iter() {
            h = fingerprint_mix(h, spec.rate.as_mbps().to_bits());
            h = fingerprint_mix(h, spec.sinr_linear().to_bits());
            h = fingerprint_mix(h, spec.max_distance.to_bits());
        }
        h
    }

    fn additive_capture(&self) -> Option<crate::AdditiveCapture> {
        let n = self.topology.num_links();
        let mut power = Vec::with_capacity(n * n);
        for row in &self.tx_rx_power {
            power.extend_from_slice(row);
        }
        Some(crate::AdditiveCapture {
            num_links: n,
            power,
            signal: self.signal.clone(),
            noise: self.phy.noise(),
            steps: self.phy.capture_thresholds(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinkRateModel;

    /// Two parallel 50 m links, separated by `gap` metres.
    fn parallel_pair(gap: f64) -> (SinrModel, LinkId, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(50.0, 0.0);
        let c = t.add_node(0.0, gap);
        let d = t.add_node(50.0, gap);
        let l1 = t.add_link(a, b).unwrap();
        let l2 = t.add_link(c, d).unwrap();
        (SinrModel::new(t, Phy::paper_default()), l1, l2)
    }

    #[test]
    fn far_apart_links_are_concurrent_at_top_rate() {
        let (m, l1, l2) = parallel_pair(10_000.0);
        let top = Rate::from_mbps(54.0);
        assert!(m.admissible(&[(l1, top), (l2, top)]));
        assert_eq!(m.max_rate_in_set(l1, &[l1, l2]), Some(top));
    }

    #[test]
    fn close_links_conflict_at_high_rate() {
        let (m, l1, l2) = parallel_pair(60.0);
        let top = Rate::from_mbps(54.0);
        // Interferer at ~60-78 m from the receiver: SINR is far below 24.56 dB.
        assert!(!m.admissible(&[(l1, top), (l2, top)]));
        // Each link alone is fine.
        assert!(m.admissible(&[(l1, top)]));
        assert!(m.admissible(&[(l2, top)]));
    }

    #[test]
    fn intermediate_gap_allows_low_rate_only() {
        // Find a separation where the pair sustains 6 Mbps but not 54.
        // With the paper's constants the 54 Mbps SINR constraint needs the
        // interferer ~247 m away while 6 Mbps only needs ~71 m, so gaps in
        // between exhibit the coupling.
        for gap in [100.0, 150.0, 200.0] {
            let (m, l1, l2) = parallel_pair(gap);
            let low = Rate::from_mbps(6.0);
            let top = Rate::from_mbps(54.0);
            if m.admissible(&[(l1, low), (l2, low)]) && !m.admissible(&[(l1, top), (l2, top)]) {
                // Rate coupling in action: same geometry, different rates.
                return;
            }
        }
        panic!("no gap exhibited rate-dependent admissibility");
    }

    #[test]
    fn alone_rates_follow_distance() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(100.0, 0.0); // 18 Mbps range
        let c = t.add_node(500.0, 0.0); // out of range from b
        let ab = t.add_link(a, b).unwrap();
        let bc = t.add_link(b, c).unwrap();
        let m = SinrModel::new(t, Phy::paper_default());
        let rates: Vec<f64> = m.alone_rates(ab).iter().map(|r| r.as_mbps()).collect();
        assert_eq!(rates, vec![18.0, 6.0]);
        assert!(m.alone_rates(bc).is_empty());
        assert_eq!(m.max_alone_rate(bc), None);
    }

    #[test]
    fn admissible_rejects_unachievable_rates() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(150.0, 0.0); // only 6 Mbps alone
        let ab = t.add_link(a, b).unwrap();
        let m = SinrModel::new(t, Phy::paper_default());
        assert!(m.admissible(&[(ab, Rate::from_mbps(6.0))]));
        assert!(!m.admissible(&[(ab, Rate::from_mbps(54.0))]));
        assert!(!m.admissible(&[(ab, Rate::ZERO)]));
        assert!(!m.admissible(&[(ab, Rate::from_mbps(11.0))])); // not in table
    }

    #[test]
    fn interference_is_additive_across_transmitters() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(50.0, 0.0);
        let c = t.add_node(0.0, 300.0);
        let d = t.add_node(50.0, 300.0);
        let e = t.add_node(0.0, -300.0);
        let f = t.add_node(50.0, -300.0);
        let ab = t.add_link(a, b).unwrap();
        let cd = t.add_link(c, d).unwrap();
        let ef = t.add_link(e, f).unwrap();
        let m = SinrModel::new(t, Phy::paper_default());
        let one = m.interference_at(ab, &[ab, cd]);
        let two = m.interference_at(ab, &[ab, cd, ef]);
        assert!(two > one);
        assert!((two - 2.0 * one).abs() < one * 0.1); // symmetric placement
    }

    #[test]
    fn hearing_includes_participants_and_sensing_range() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(50.0, 0.0);
        let near = t.add_node(100.0, 0.0); // 100 m from tx: within 158 m CS range
        let far = t.add_node(1000.0, 0.0);
        let ab = t.add_link(a, b).unwrap();
        let m = SinrModel::new(t, Phy::paper_default());
        assert!(m.node_hears(a, ab));
        assert!(m.node_hears(b, ab));
        assert!(m.node_hears(near, ab));
        assert!(!m.node_hears(far, ab));
    }

    #[test]
    fn conflict_range_matches_admissibility_boundary() {
        let phy = Phy::paper_default();
        // Build a probe topology lazily per distance.
        let link_length = 50.0;
        let rate = Rate::from_mbps(54.0);
        let model_at = |gap: f64| {
            let mut t = Topology::new();
            let a = t.add_node(0.0, 0.0);
            let b = t.add_node(link_length, 0.0);
            // Interferer transmitter exactly `gap` from the victim receiver.
            let c = t.add_node(link_length + gap, 0.0);
            let d = t.add_node(link_length + gap + 10.0, 0.0);
            let l1 = t.add_link(a, b).unwrap();
            let l2 = t.add_link(c, d).unwrap();
            (SinrModel::new(t, phy.clone()), l1, l2)
        };
        let (probe, _, _) = model_at(100.0);
        let range = probe.conflict_range(link_length, rate).unwrap();
        assert!((150.0..400.0).contains(&range), "range {range}");
        // Just inside the range the pair is inadmissible at 54; just
        // outside it is admissible.
        let low = Rate::from_mbps(6.0);
        let (m, l1, l2) = model_at(range - 1.0);
        assert!(!m.admissible(&[(l1, rate), (l2, low)]));
        let (m, l1, l2) = model_at(range + 1.0);
        assert!(m.admissible(&[(l1, rate), (l2, low)]));
        // Rates out of reach return None.
        assert!(probe.conflict_range(100.0, rate).is_none()); // > 59 m
        assert!(probe.conflict_range(50.0, Rate::from_mbps(11.0)).is_none());
    }

    #[test]
    fn fingerprints_track_geometry_and_radio() {
        let (m, l1, l2) = parallel_pair(300.0);
        // Distinct links fingerprint differently; a clone is identical.
        assert_ne!(m.link_fingerprint(l1), m.link_fingerprint(l2));
        let again = m.clone();
        assert_eq!(m.link_fingerprint(l1), again.link_fingerprint(l1));
        assert_eq!(m.model_fingerprint(), again.model_fingerprint());
        // Moving one endpoint changes only that link's fingerprint.
        let (moved, m1, m2) = parallel_pair(310.0);
        assert_eq!(m.link_fingerprint(l1), moved.link_fingerprint(m1));
        assert_ne!(m.link_fingerprint(l2), moved.link_fingerprint(m2));
        // A different radio changes the model fingerprint.
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(50.0, 0.0);
        t.add_link(a, b).unwrap();
        let quiet = SinrModel::new(t, Phy::paper_default().with_noise(1e-15));
        assert_ne!(m.model_fingerprint(), quiet.model_fingerprint());
        // The blanket `&M` impl forwards rather than defaulting to 0.
        let by_ref: &SinrModel = &m;
        assert_eq!(by_ref.link_fingerprint(l1), m.link_fingerprint(l1));
        assert_eq!(by_ref.model_fingerprint(), m.model_fingerprint());
        assert_ne!(m.model_fingerprint(), 0);
    }

    #[test]
    fn max_rate_in_set_matches_admissibility() {
        // In the SINR model interference is independent of chosen rates, so
        // the joint (max, max) vector must be admissible, and raising either
        // link above its set-max must not be.
        for gap in [150.0, 200.0, 400.0, 1000.0] {
            let (m, l1, l2) = parallel_pair(gap);
            let set = [l1, l2];
            let (Some(r1), Some(r2)) = (m.max_rate_in_set(l1, &set), m.max_rate_in_set(l2, &set))
            else {
                continue;
            };
            assert!(
                m.admissible(&[(l1, r1), (l2, r2)]),
                "joint max-rate vector must be admissible at gap {gap}"
            );
            let higher = m.phy().rates().iter().map(|s| s.rate).find(|&x| x > r1);
            if let Some(higher) = higher {
                assert!(
                    !m.admissible(&[(l1, higher), (l2, r2)]),
                    "raising l1 above its set max must fail at gap {gap}"
                );
            }
        }
    }
}
