//! Bounded MPMC job queue between the event loop and the worker pool.
//!
//! Admission is strictly non-blocking: the event loop must never sleep on
//! a full queue, so [`JobQueue::try_push`] fails fast and the caller turns
//! the failure into a structured `overloaded` response. Workers block in
//! [`JobQueue::pop`] until a job or [`JobQueue::close`] arrives; close
//! semantics let queued work drain (pop keeps returning items) while new
//! pushes are refused, which is exactly the graceful-shutdown order.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::{lock_recover, wait_recover};

/// Why a push was refused; the job is handed back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — the service is overloaded.
    Full(T),
    /// The queue was closed — the service is shutting down.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](JobQueue::close); both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed and empty.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = wait_recover(&self.nonempty, inner);
        }
    }

    /// Refuses further pushes; queued items still drain through `pop`, and
    /// blocked consumers wake to observe the close.
    pub fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.nonempty.notify_all();
    }

    /// Items currently queued (the queue-depth gauge).
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q: JobQueue<u32> = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_wakes_consumers() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(8));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        assert_eq!(q.pop(), Some(7), "queued work survives close");
        assert_eq!(q.pop(), None);

        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn items_cross_threads_in_fifo_order() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(64));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q2.pop() {
                got.push(v);
            }
            got
        });
        for v in 0..32 {
            while q.try_push(v).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), (0..32).collect::<Vec<_>>());
    }
}
