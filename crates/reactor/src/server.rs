//! The nonblocking event loop: accept, frame, dispatch, flush.
//!
//! One thread runs the epoll loop and owns every socket; a small pool of
//! workers runs the actual request handler off the loop so a slow solve
//! never stalls I/O. The pieces connect like this:
//!
//! ```text
//!   epoll ── readable ──▶ LineFramer ──▶ JobQueue ──▶ worker pool
//!     ▲                                                  │ handle()
//!     └── eventfd wake ◀── completions mailbox ◀─────────┘
//! ```
//!
//! Completed responses come back through a mailbox, are re-ordered per
//! connection by sequence number ([`crate::conn`]), and flush through
//! partial-write buffers under `EPOLLOUT` interest. Deadlines (partial
//! frame stuck, slow consumer) ride the timer wheel with lazy
//! cancellation. Graceful shutdown — a SIGTERM or
//! [`ReactorHandle::shutdown`] — stops accepting, lets queued and
//! in-flight requests finish within `drain_deadline`, flushes, and exits.
//!
//! The loop is protocol-agnostic: request execution *and* error rendering
//! live behind [`LineHandler`], so the service layer fully owns the wire
//! format.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::conn::Conn;
use crate::frame::FrameError;
use crate::lock_recover;
use crate::metrics::ReactorMetrics;
use crate::queue::{JobQueue, PushError};
use crate::sys::{self, Event, Interest, Poller, Waker};
use crate::timer::TimerWheel;

/// Token for the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token for the wakeup eventfd.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Why the reactor refused to run a frame through the handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The job queue is at capacity.
    Overloaded,
    /// A single frame exceeded the configured byte cap.
    FrameTooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The handler panicked while executing the request.
    Internal,
}

/// The protocol glue the reactor drives.
///
/// The reactor consumes whitespace-only frames itself (mirroring the
/// blocking server, which skips blank lines without a response); every
/// other complete frame reaches [`handle`](LineHandler::handle) with
/// surrounding whitespace trimmed. Responses are written back followed by
/// a single `\n`.
pub trait LineHandler: Send + Sync {
    /// Executes one request line and returns the response line (no
    /// trailing newline). Runs on a worker thread.
    fn handle(&self, line: &str) -> String;

    /// Renders the response line for a frame the reactor refused to run.
    /// `line` is the offending frame when it was parseable
    /// (overload/shutdown); `None` when it never completed (frame cap).
    /// Runs on the event-loop thread — keep it allocation-cheap.
    fn reject(&self, line: Option<&str>, reject: Reject) -> String;
}

/// Tuning for one reactor instance.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Bind address, e.g. `127.0.0.1:4790`.
    pub addr: String,
    /// Worker threads executing [`LineHandler::handle`].
    pub workers: usize,
    /// Job-queue capacity; a full queue yields `overloaded` rejects.
    pub queue_capacity: usize,
    /// Per-frame byte cap; beyond it the client gets `frame_too_large`
    /// and the connection closes.
    pub max_frame_len: usize,
    /// How long a partial frame may sit unfinished before the connection
    /// is closed (`None` disables the read deadline).
    pub read_deadline: Option<Duration>,
    /// How long a response may take to flush before the connection is
    /// closed (`None` disables the write deadline).
    pub write_deadline: Option<Duration>,
    /// Bound on graceful drain; in-flight work past it is force-closed.
    pub drain_deadline: Duration,
    /// Accept cap; connections beyond it are refused at accept time.
    pub max_connections: usize,
    /// Install SIGTERM/SIGINT handlers that trigger a graceful drain.
    pub install_signal_handler: bool,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 1024,
            max_frame_len: 1 << 20,
            read_deadline: Some(Duration::from_secs(30)),
            write_deadline: Some(Duration::from_secs(30)),
            drain_deadline: Duration::from_secs(5),
            max_connections: 4096,
            install_signal_handler: false,
        }
    }
}

/// One frame headed for the worker pool.
#[derive(Debug)]
struct Job {
    token: u64,
    seq: u64,
    line: String,
}

/// One finished frame headed back to the loop.
#[derive(Debug)]
struct Completion {
    token: u64,
    seq: u64,
    response: Option<String>,
}

/// Which per-connection deadline a timer entry represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    Read,
    Write,
}

/// Handle to a running reactor.
#[derive(Debug)]
pub struct ReactorHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    metrics: Arc<ReactorMetrics>,
    loop_thread: Option<JoinHandle<io::Result<()>>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live metrics block.
    pub fn metrics(&self) -> Arc<ReactorMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Requests a graceful drain from any thread: stop accepting, finish
    /// queued and in-flight work within the drain deadline, then stop.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Waits for the loop and workers to finish.
    ///
    /// # Errors
    ///
    /// A fatal event-loop I/O error (poller failure); handler panics and
    /// per-connection errors never surface here.
    pub fn join(mut self) -> io::Result<()> {
        let result = match self.loop_thread.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("reactor event-loop thread panicked"))),
            None => Ok(()),
        };
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        result
    }
}

/// Binds `config.addr` and starts the event loop plus worker pool.
///
/// # Errors
///
/// Bind, epoll, or eventfd creation failures.
pub fn spawn(config: ReactorConfig, handler: Arc<dyn LineHandler>) -> io::Result<ReactorHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;

    let poller = Poller::new()?;
    let waker = Waker::new()?;
    poller.register(waker.as_raw_fd(), TOKEN_WAKER, Interest::READABLE)?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let signal_flag = if config.install_signal_handler {
        Some(sys::install_shutdown_signal(&waker))
    } else {
        None
    };

    let metrics = Arc::new(ReactorMetrics::new());
    let queue: Arc<JobQueue<Job>> = Arc::new(JobQueue::new(config.queue_capacity));
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

    let mut workers = Vec::new();
    for i in 0..config.workers.max(1) {
        let queue = Arc::clone(&queue);
        let completions = Arc::clone(&completions);
        let handler = Arc::clone(&handler);
        let waker = waker.clone();
        let builder = std::thread::Builder::new().name(format!("awb-reactor-worker-{i}"));
        workers.push(builder.spawn(move || {
            while let Some(job) = queue.pop() {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handler.handle(&job.line)
                }));
                let response = match outcome {
                    Ok(text) => text,
                    Err(_) => handler.reject(Some(&job.line), Reject::Internal),
                };
                lock_recover(&completions).push(Completion {
                    token: job.token,
                    seq: job.seq,
                    response: Some(response),
                });
                waker.wake();
            }
        })?);
    }

    let loop_shutdown = Arc::clone(&shutdown);
    let loop_metrics = Arc::clone(&metrics);
    let loop_waker = waker.clone();
    let builder = std::thread::Builder::new().name("awb-reactor-loop".to_string());
    let loop_thread = builder.spawn(move || {
        let now = Instant::now();
        let mut event_loop = EventLoop {
            poller,
            listener: Some(listener),
            waker: loop_waker,
            queue,
            completions,
            handler,
            metrics: loop_metrics,
            config,
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            wheel: TimerWheel::new(256, Duration::from_millis(100), now),
            draining: false,
            drain_deadline_at: None,
            shutdown: loop_shutdown,
            signal_flag,
            open: 0,
        };
        event_loop.run()
    })?;

    Ok(ReactorHandle {
        local_addr,
        shutdown,
        waker,
        metrics,
        loop_thread: Some(loop_thread),
        workers,
    })
}

/// A registered connection: socket plus protocol state.
#[derive(Debug)]
struct Slot {
    stream: TcpStream,
    conn: Conn,
    interest: Interest,
}

struct EventLoop {
    poller: Poller,
    listener: Option<TcpListener>,
    waker: Waker,
    queue: Arc<JobQueue<Job>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    handler: Arc<dyn LineHandler>,
    metrics: Arc<ReactorMetrics>,
    config: ReactorConfig,
    slots: Vec<Option<Slot>>,
    /// Per-slot generation, bumped on close so stale tokens never match.
    gens: Vec<u32>,
    free: Vec<u32>,
    wheel: TimerWheel<(u64, TimerKind)>,
    draining: bool,
    drain_deadline_at: Option<Instant>,
    shutdown: Arc<AtomicBool>,
    signal_flag: Option<&'static AtomicBool>,
    open: usize,
}

impl EventLoop {
    // awb-audit: event-loop
    fn run(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        let mut fired: Vec<(u64, TimerKind)> = Vec::new();
        loop {
            let now = Instant::now();
            let timeout = self.poll_timeout(now);
            events.clear();
            self.poller.wait(&mut events, timeout)?;
            ReactorMetrics::bump(&self.metrics.ticks);

            for ev in events.iter().copied() {
                match ev.token {
                    TOKEN_WAKER => self.waker.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_event(token, ev),
                }
            }

            self.apply_completions();

            let now = Instant::now();
            fired.clear();
            self.wheel.advance(now, &mut fired);
            for &(token, kind) in &fired {
                self.deadline_fired(token, kind, now);
            }

            if self.shutdown_requested() && !self.draining {
                self.begin_drain(now);
            }
            if self.draining && self.drain_complete(now) {
                break;
            }

            ReactorMetrics::set(&self.metrics.queue_depth, self.queue.len() as u64);
            ReactorMetrics::set(&self.metrics.connections, self.open as u64);
        }
        // Let workers observe the closed queue and exit; completions for
        // force-closed connections are simply dropped.
        self.queue.close();
        Ok(())
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
            || self.signal_flag.is_some_and(|f| f.load(Ordering::SeqCst))
    }

    fn poll_timeout(&self, now: Instant) -> Option<Duration> {
        let mut timeout = self.wheel.next_wake(now);
        if let Some(at) = self.drain_deadline_at {
            let until = at.saturating_duration_since(now);
            timeout = Some(timeout.map_or(until, |t| t.min(until)));
        }
        timeout
    }

    // ---- accept path ----

    fn accept_ready(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (ECONNABORTED
                // and friends): skip this attempt, keep listening.
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.open >= self.config.max_connections || self.draining {
            ReactorMetrics::bump(&self.metrics.refused);
            drop(stream);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            ReactorMetrics::bump(&self.metrics.refused);
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        let token = self.token_for(idx);
        let interest = Interest::READABLE;
        if self
            .poller
            .register(stream.as_raw_fd(), token, interest)
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        self.slots[idx as usize] = Some(Slot {
            stream,
            conn: Conn::new(self.config.max_frame_len),
            interest,
        });
        self.open += 1;
        ReactorMetrics::bump(&self.metrics.accepted);
    }

    fn token_for(&self, idx: u32) -> u64 {
        ((self.gens[idx as usize] as u64) << 32) | idx as u64
    }

    /// Resolves a token to a live slot index, rejecting stale generations.
    fn resolve(&self, token: u64) -> Option<u32> {
        let idx = (token & u32::MAX as u64) as u32;
        let gen = (token >> 32) as u32;
        if (idx as usize) < self.slots.len()
            && self.gens[idx as usize] == gen
            && self.slots[idx as usize].is_some()
        {
            Some(idx)
        } else {
            None
        }
    }

    // ---- connection I/O ----

    fn conn_event(&mut self, token: u64, ev: Event) {
        let Some(idx) = self.resolve(token) else {
            return;
        };
        if ev.error {
            self.close_conn(idx);
            return;
        }
        let Some(mut slot) = self.slots[idx as usize].take() else {
            return;
        };
        let mut fatal = false;
        if ev.readable && !slot.conn.read_closed() && !slot.conn.closing() {
            fatal = self.read_ready(token, &mut slot);
        }
        if !fatal && ev.writable {
            fatal = write_pending(&mut slot.conn, &mut slot.stream);
        }
        self.slots[idx as usize] = Some(slot);
        if fatal {
            self.close_conn(idx);
        } else {
            self.settle(idx);
        }
    }

    /// Reads until `WouldBlock`, framing and dispatching complete lines.
    /// Returns `true` on a fatal connection error.
    fn read_ready(&mut self, token: u64, slot: &mut Slot) -> bool {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match slot.stream.read(&mut buf) {
                Ok(0) => {
                    slot.conn.mark_read_closed();
                    break;
                }
                Ok(n) => {
                    if let Err(FrameError::TooLarge { limit }) = slot.conn.push_bytes(&buf[..n]) {
                        ReactorMetrics::bump(&self.metrics.frame_too_large);
                        let body = self.handler.reject(None, Reject::FrameTooLarge { limit });
                        let seq = slot.conn.assign_seq();
                        slot.conn.complete(seq, Some(body));
                        slot.conn.mark_closing();
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        self.dispatch_lines(token, &mut slot.conn);
        false
    }

    /// Drains complete lines out of the framer into the job queue.
    fn dispatch_lines(&mut self, token: u64, conn: &mut Conn) {
        while let Some(raw) = conn.next_line() {
            ReactorMetrics::bump(&self.metrics.frames);
            let text = String::from_utf8_lossy(&raw);
            let line = text.trim();
            if line.is_empty() {
                // Mirror the blocking server: blank lines get no response.
                continue;
            }
            let seq = conn.assign_seq();
            let job = Job {
                token,
                seq,
                line: line.to_string(),
            };
            match self.queue.try_push(job) {
                Ok(()) => {}
                Err(PushError::Full(job)) => {
                    ReactorMetrics::bump(&self.metrics.rejected_overload);
                    let body = self.handler.reject(Some(&job.line), Reject::Overloaded);
                    conn.complete(job.seq, Some(body));
                }
                Err(PushError::Closed(job)) => {
                    let body = self.handler.reject(Some(&job.line), Reject::ShuttingDown);
                    conn.complete(job.seq, Some(body));
                }
            }
        }
    }

    /// Post-I/O housekeeping for one connection: flush ready responses,
    /// write, update interest and deadlines, and close if finished.
    fn settle(&mut self, idx: u32) {
        let token = self.token_for(idx);
        let Some(mut slot) = self.slots[idx as usize].take() else {
            return;
        };
        let moved = slot.conn.flush_ready();
        if moved > 0 {
            self.metrics
                .responses
                .fetch_add(moved as u64, Ordering::Relaxed);
        }
        let fatal = write_pending(&mut slot.conn, &mut slot.stream);
        let done = !fatal && self.finished(&slot.conn);
        if fatal || done {
            drop(slot);
            // The slot was already taken; rebuild enough state for
            // close_conn's bookkeeping.
            self.gens[idx as usize] = self.gens[idx as usize].wrapping_add(1);
            self.free.push(idx);
            self.open = self.open.saturating_sub(1);
            ReactorMetrics::bump(&self.metrics.closed);
            return;
        }

        self.update_deadlines(token, &mut slot);
        let desired = Interest {
            readable: !self.draining && !slot.conn.read_closed() && !slot.conn.closing(),
            writable: slot.conn.wants_write(),
        };
        if desired != slot.interest {
            if self
                .poller
                .modify(slot.stream.as_raw_fd(), token, desired)
                .is_err()
            {
                drop(slot);
                self.gens[idx as usize] = self.gens[idx as usize].wrapping_add(1);
                self.free.push(idx);
                self.open = self.open.saturating_sub(1);
                ReactorMetrics::bump(&self.metrics.closed);
                return;
            }
            slot.interest = desired;
        }
        self.slots[idx as usize] = Some(slot);
    }

    /// Whether the connection has nothing left to do and should close.
    /// Once input has ended (EOF or drain), a buffered partial frame can
    /// never complete, so only pending output keeps the connection alive.
    fn finished(&self, conn: &Conn) -> bool {
        if conn.closing() {
            return !conn.wants_write();
        }
        let no_more_input = conn.read_closed() || self.draining;
        no_more_input && conn.fully_flushed()
    }

    fn update_deadlines(&mut self, token: u64, slot: &mut Slot) {
        let now = Instant::now();
        if let Some(window) = self.config.read_deadline {
            if slot.conn.has_partial_frame() && !slot.conn.read_closed() {
                if slot.conn.read_deadline().is_none() {
                    let at = now + window;
                    slot.conn.arm_read_deadline(at);
                    self.wheel.schedule((token, TimerKind::Read), at);
                }
            } else {
                slot.conn.clear_read_deadline();
            }
        }
        if let Some(window) = self.config.write_deadline {
            if slot.conn.wants_write() {
                if slot.conn.write_deadline().is_none() {
                    let at = now + window;
                    slot.conn.arm_write_deadline(at);
                    self.wheel.schedule((token, TimerKind::Write), at);
                }
            } else {
                slot.conn.clear_write_deadline();
            }
        }
    }

    /// A timer entry fired; validate it against live state (lazy cancel).
    fn deadline_fired(&mut self, token: u64, kind: TimerKind, now: Instant) {
        let Some(idx) = self.resolve(token) else {
            return;
        };
        let due = {
            let Some(slot) = self.slots[idx as usize].as_ref() else {
                return;
            };
            let armed = match kind {
                TimerKind::Read => slot.conn.read_deadline(),
                TimerKind::Write => slot.conn.write_deadline(),
            };
            armed.is_some_and(|at| at <= now)
        };
        if due {
            ReactorMetrics::bump(&self.metrics.deadline_closes);
            self.close_conn(idx);
        }
    }

    // ---- completions ----

    fn apply_completions(&mut self) {
        let batch: Vec<Completion> = {
            let mut mailbox = lock_recover(&self.completions);
            std::mem::take(&mut *mailbox)
        };
        let mut touched: Vec<u32> = Vec::new();
        for completion in batch {
            let Some(idx) = self.resolve(completion.token) else {
                continue;
            };
            if let Some(slot) = self.slots[idx as usize].as_mut() {
                slot.conn.complete(completion.seq, completion.response);
                if !touched.contains(&idx) {
                    touched.push(idx);
                }
            }
        }
        for idx in touched {
            self.settle(idx);
        }
    }

    // ---- shutdown ----

    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline_at = Some(now + self.config.drain_deadline);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        // Refuse new work; queued jobs still drain through the workers.
        self.queue.close();
        // Frames already buffered but not yet dispatched arrived after the
        // drain began: answer them with a structured shutdown reject so
        // ordering stays intact, then let the flush finish.
        for idx in 0..self.slots.len() as u32 {
            let token = self.token_for(idx);
            let Some(mut slot) = self.slots[idx as usize].take() else {
                continue;
            };
            self.dispatch_lines(token, &mut slot.conn);
            self.slots[idx as usize] = Some(slot);
            self.settle(idx);
        }
    }

    fn drain_complete(&mut self, now: Instant) -> bool {
        if self.open == 0 {
            return true;
        }
        if self.drain_deadline_at.is_some_and(|at| at <= now) {
            for idx in 0..self.slots.len() as u32 {
                if self.slots[idx as usize].is_some() {
                    ReactorMetrics::bump(&self.metrics.drain_force_closes);
                    self.close_conn(idx);
                }
            }
            return true;
        }
        false
    }

    fn close_conn(&mut self, idx: u32) {
        if let Some(slot) = self.slots[idx as usize].take() {
            let _ = self.poller.deregister(slot.stream.as_raw_fd());
            drop(slot);
            self.gens[idx as usize] = self.gens[idx as usize].wrapping_add(1);
            self.free.push(idx);
            self.open = self.open.saturating_sub(1);
            ReactorMetrics::bump(&self.metrics.closed);
        }
    }
}

/// Writes pending response bytes until `WouldBlock`; returns `true` on a
/// fatal connection error.
fn write_pending(conn: &mut Conn, stream: &mut TcpStream) -> bool {
    while conn.wants_write() {
        match stream.write(conn.pending_write()) {
            Ok(0) => return true,
            Ok(n) => {
                conn.consume_written(n);
                if !conn.wants_write() {
                    conn.clear_write_deadline();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// Toy protocol: uppercase the line; rejects render as `ERR:<kind>`.
    struct Upper;

    impl LineHandler for Upper {
        fn handle(&self, line: &str) -> String {
            line.to_uppercase()
        }

        fn reject(&self, _line: Option<&str>, reject: Reject) -> String {
            match reject {
                Reject::Overloaded => "ERR:overloaded".to_string(),
                Reject::FrameTooLarge { .. } => "ERR:frame_too_large".to_string(),
                Reject::ShuttingDown => "ERR:shutting_down".to_string(),
                Reject::Internal => "ERR:internal".to_string(),
            }
        }
    }

    fn spawn_upper(config: ReactorConfig) -> ReactorHandle {
        spawn(config, Arc::new(Upper)).expect("spawn reactor")
    }

    #[test]
    fn answers_pipelined_requests_in_order() {
        let handle = spawn_upper(ReactorConfig::default());
        let addr = handle.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"alpha\nbeta\n\ngamma\n").unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        let mut got = Vec::new();
        for _ in 0..3 {
            line.clear();
            reader.read_line(&mut line).unwrap();
            got.push(line.trim().to_string());
        }
        assert_eq!(got, vec!["ALPHA", "BETA", "GAMMA"]);
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn oversized_frame_gets_structured_error_then_close() {
        let config = ReactorConfig {
            max_frame_len: 32,
            ..ReactorConfig::default()
        };
        let handle = spawn_upper(config);
        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        client.write_all(&[b'x'; 128]).unwrap();
        let mut reader = BufReader::new(client);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "ERR:frame_too_large");
        // The connection then closes.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
        assert_eq!(handle.metrics().frame_too_large.load(Ordering::Relaxed), 1);
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn graceful_shutdown_answers_inflight_then_exits() {
        let handle = spawn_upper(ReactorConfig::default());
        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        client.write_all(b"drain-me\n").unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "DRAIN-ME");
        handle.shutdown();
        // After the drain the peer observes EOF.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
        handle.join().unwrap();
    }

    #[test]
    fn read_deadline_reaps_stuck_partial_frames() {
        let config = ReactorConfig {
            read_deadline: Some(Duration::from_millis(150)),
            ..ReactorConfig::default()
        };
        let handle = spawn_upper(config);
        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        client.write_all(b"never-finished").unwrap(); // no newline
        let mut reader = BufReader::new(client);
        let mut line = String::new();
        // The server closes us without a response once the deadline hits.
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
        assert!(
            handle.metrics().deadline_closes.load(Ordering::Relaxed) >= 1,
            "close should be attributed to the read deadline"
        );
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn many_connections_interleave() {
        let handle = spawn_upper(ReactorConfig::default());
        let addr = handle.local_addr();
        let mut clients: Vec<TcpStream> =
            (0..32).map(|_| TcpStream::connect(addr).unwrap()).collect();
        for (i, c) in clients.iter_mut().enumerate() {
            c.write_all(format!("msg-{i}\n").as_bytes()).unwrap();
        }
        for (i, c) in clients.into_iter().enumerate() {
            let mut reader = BufReader::new(c);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), format!("MSG-{i}"));
        }
        handle.shutdown();
        handle.join().unwrap();
    }
}
