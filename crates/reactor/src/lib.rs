//! `awb-reactor` — a dependency-free nonblocking service core for the
//! admission-control daemon.
//!
//! The blocking `awb-service` server spends one OS thread per in-flight
//! connection; at the "millions of users" concurrency the ROADMAP aims for,
//! thread stacks and context switches dominate before the Eq. 6 solver ever
//! runs. This crate replaces that I/O core with a classic readiness design:
//!
//! * **[`sys`]** — a minimal epoll / eventfd binding written against the raw
//!   Linux syscall ABI (no `libc` crate; the build environment vendors all
//!   dependencies). The only `unsafe` in the workspace lives there, behind
//!   safe [`sys::Poller`] / [`sys::Waker`] wrappers.
//! * **[`frame`]** — an incremental newline framer with partial-read
//!   buffers and a max-frame-size cap, byte-equivalent to the blocking
//!   server's `BufRead`-style framing under any chunking of the input.
//! * **[`timer`]** — a hashed timer wheel driving per-connection read/write
//!   deadlines and the bounded shutdown drain.
//! * **[`queue`]** — a bounded MPMC job queue with non-blocking admission
//!   (full ⇒ the caller renders a structured `overloaded` error instead of
//!   buffering without bound).
//! * **[`server`]** — the event loop itself: per-connection state machines
//!   ([`conn`]), a small worker pool running the actual solves off the loop,
//!   in-order response delivery for pipelined requests, and graceful
//!   shutdown (stop accepting, drain in-flight and queued work within a
//!   deadline, then exit).
//!
//! The reactor is protocol-agnostic: it moves newline-delimited frames and
//! delegates both request execution and error rendering to a
//! [`LineHandler`], so `awb-service` keeps sole ownership of the wire
//! format and answers stay byte-identical to the blocking path.

// The epoll binding in `sys` requires FFI, so the crate denies (not
// forbids) unsafe code and re-allows it for that one module only.
// awb-audit: allow(lint-header) — unsafe is denied crate-wide and scoped to the sys FFI module; forbid would make the epoll binding impossible
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod frame;
pub mod metrics;
pub mod queue;
pub mod server;
#[allow(unsafe_code)]
pub mod sys;
pub mod timer;

pub use frame::{FrameError, LineFramer};
pub use metrics::ReactorMetrics;
pub use server::{spawn, LineHandler, ReactorConfig, ReactorHandle, Reject};
pub use sys::{Event, Interest, Poller, Waker};
pub use timer::TimerWheel;

/// Recovers a mutex guard even if a previous holder panicked; every critical
/// section in this crate leaves its data structurally consistent first.
pub(crate) fn lock_recover<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Condvar wait with the same poison recovery as [`lock_recover`].
pub(crate) fn wait_recover<'a, T>(
    cv: &std::sync::Condvar,
    guard: std::sync::MutexGuard<'a, T>,
) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
