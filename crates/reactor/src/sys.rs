//! Minimal Linux epoll / eventfd / signal binding.
//!
//! The build environment vendors every dependency, so there is no `libc`
//! crate to lean on; the handful of symbols the reactor needs are declared
//! here against the C ABI that `std` already links. All `unsafe` in the
//! workspace is confined to this module, wrapped in safe types:
//!
//! * [`Poller`] — an `epoll` instance owning its fd, with level-triggered
//!   register / modify / deregister / wait.
//! * [`Waker`] — an `eventfd` the worker pool (or a signal handler) writes
//!   to wake the event loop from any thread.
//! * [`install_shutdown_signal`] — points SIGTERM/SIGINT at a handler that
//!   sets a process-global flag and nudges the waker, the hook behind the
//!   daemon's graceful drain.
//!
//! Everything here is Linux-only, which matches the deployment target (the
//! blocking `std`-only server remains available on other platforms).

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type c_uint = u32;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// SIGINT signal number (keyboard interrupt).
pub const SIGINT: c_int = 2;
/// SIGTERM signal number (polite termination request).
pub const SIGTERM: c_int = 15;

/// The kernel's `struct epoll_event`. x86_64 packs it; other architectures
/// use natural alignment — mirroring the UAPI header's `EPOLL_PACKED`.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

/// Readiness interest for one registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer closes).
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (data, or a pending EOF).
    pub readable: bool,
    /// Writable without blocking.
    pub writable: bool,
    /// Error condition on the fd.
    pub error: bool,
    /// Peer hung up (full or write-half close).
    pub hangup: bool,
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// A level-triggered epoll instance. The fd is owned and closed on drop.
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// The raw `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 has no memory-safety preconditions; the
        // returned fd is immediately wrapped in an OwnedFd.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(last_os_error());
        }
        // SAFETY: fd is a freshly created, valid, uniquely owned descriptor.
        let epfd = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        // SAFETY: epfd and fd are valid descriptors and `ev` outlives the
        // call; the kernel copies the event structure.
        let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure (e.g. the fd is already registered).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Updates the interest set of an already registered fd.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes `fd` from the interest set.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::default())
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait forever), appending readiness notifications
    /// to `events`. A signal interrupt (`EINTR`) is reported as zero events
    /// rather than an error so callers re-check their shutdown flags.
    ///
    /// # Errors
    ///
    /// The raw `epoll_wait` failure (except `EINTR`).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        const CAPACITY: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a 100µs deadline does not busy-spin at 0ms.
                let ms = d.as_millis().min(i32::MAX as u128) as i64;
                let rounded = if d.subsec_millis() as u128 * 1_000_000 != d.subsec_nanos() as u128 {
                    ms + 1
                } else {
                    ms
                };
                rounded.min(i32::MAX as i64) as c_int
            }
        };
        // SAFETY: `raw` is a valid writable buffer of CAPACITY entries for
        // the duration of the call and epfd is a valid epoll descriptor.
        let n = unsafe {
            epoll_wait(
                self.epfd.as_raw_fd(),
                raw.as_mut_ptr(),
                CAPACITY as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        let n = n as usize;
        for ev in raw.iter().take(n) {
            let bits = ev.events;
            events.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & EPOLLERR != 0,
                hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

/// A cross-thread wakeup handle backed by a non-blocking `eventfd`.
///
/// Cloning shares the same underlying fd; register [`Waker::as_raw_fd`]
/// with the poller (readable interest) and call [`Waker::drain`] when it
/// fires.
#[derive(Debug, Clone)]
pub struct Waker {
    file: Arc<File>,
}

impl Waker {
    /// Creates the eventfd (`EFD_CLOEXEC | EFD_NONBLOCK`).
    ///
    /// # Errors
    ///
    /// The raw `eventfd` failure.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: eventfd has no memory-safety preconditions; the returned
        // fd is immediately wrapped in an owning File.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(last_os_error());
        }
        // SAFETY: fd is a freshly created, valid, uniquely owned descriptor.
        let file = unsafe { File::from_raw_fd(fd) };
        Ok(Waker {
            file: Arc::new(file),
        })
    }

    /// The raw fd, for poller registration.
    pub fn as_raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Wakes the poller. Never blocks: if the counter is already saturated
    /// the loop is awake anyway, so `WouldBlock` is silently ignored.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&*self.file).write(&one);
    }

    /// Clears the pending wakeup counter after the poller observed it.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&*self.file).read(&mut buf);
    }
}

/// Process-global shutdown flag set by the signal handler.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);
/// The eventfd the signal handler pokes (−1 until installed).
static SIGNAL_WAKE_FD: AtomicI32 = AtomicI32::new(-1);

extern "C" fn on_shutdown_signal(_signum: c_int) {
    // Only async-signal-safe operations: an atomic store and a write(2).
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    let fd = SIGNAL_WAKE_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        const ONE: [u8; 8] = 1u64.to_ne_bytes();
        // SAFETY: write(2) is async-signal-safe; the fd is the eventfd
        // published by install_shutdown_signal, kept alive for the process
        // lifetime by the leaked Waker clone.
        unsafe {
            let _ = write(fd, ONE.as_ptr(), ONE.len());
        }
    }
}

/// Installs SIGTERM/SIGINT handlers that set the returned flag and poke
/// `waker`. The waker clone is leaked so the fd stays valid for the whole
/// process lifetime (signal handlers cannot synchronize with drops).
///
/// Calling this more than once re-points the handler at the newest waker.
pub fn install_shutdown_signal(waker: &Waker) -> &'static AtomicBool {
    let keep_alive = Box::leak(Box::new(waker.clone()));
    SIGNAL_WAKE_FD.store(keep_alive.as_raw_fd(), Ordering::SeqCst);
    // SAFETY: on_shutdown_signal is async-signal-safe (atomics + write)
    // and stays valid for the program lifetime.
    unsafe {
        signal(SIGTERM, on_shutdown_signal);
        signal(SIGINT, on_shutdown_signal);
    }
    &SHUTDOWN_REQUESTED
}

/// Whether a shutdown signal has been observed (for paths that never
/// installed the waker-based handler).
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_sees_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: a short wait returns no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        client.write_all(b"x").unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller
            .register(waker.as_raw_fd(), 99, Interest::READABLE)
            .unwrap();

        let w2 = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        waker.drain();

        // Drained: the next wait times out with no events.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        t.join().unwrap();
    }
}
