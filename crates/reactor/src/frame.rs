//! Incremental newline framing with partial-read buffering and a frame
//! size cap.
//!
//! The wire protocol is one JSON request per `\n`-terminated line. A
//! nonblocking read can deliver any prefix of that — half a line, three
//! lines and a half, one byte — so the framer accumulates bytes and yields
//! complete lines in arrival order. It is the byte-for-byte equivalent of
//! the blocking server's `read`-and-split loop: frames exclude the
//! terminator, and the unterminated tail is held until more bytes (or EOF)
//! arrive.
//!
//! The cap turns a slow-loris client (or a genuinely huge request) into a
//! structured [`FrameError::TooLarge`] instead of unbounded buffering; the
//! caller answers with a `frame_too_large` error and closes.

/// Framing failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// A line exceeded the configured cap before its `\n` arrived.
    TooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Accumulates bytes and yields complete `\n`-delimited lines.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for `\n` (resume point, so repeated
    /// pushes of a long partial line stay O(new bytes)).
    scanned: usize,
    /// Bytes after the last `\n` in `buf` (the unterminated tail).
    tail: usize,
    /// Max bytes a single unterminated line may occupy.
    max_frame: usize,
    /// Set once [`FrameError::TooLarge`] fired; the framer stays poisoned.
    poisoned: bool,
}

impl LineFramer {
    /// Creates a framer with the given per-line byte cap.
    pub fn new(max_frame: usize) -> LineFramer {
        LineFramer {
            buf: Vec::new(),
            scanned: 0,
            tail: 0,
            max_frame,
            poisoned: false,
        }
    }

    /// Appends freshly read bytes.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] when the unterminated tail exceeds the cap
    /// before its `\n` arrives; the framer is poisoned afterwards and
    /// yields no further lines.
    // awb-audit: hot
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), FrameError> {
        if self.poisoned {
            return Err(FrameError::TooLarge {
                limit: self.max_frame,
            });
        }
        match bytes.iter().rposition(|&b| b == b'\n') {
            Some(pos) => self.tail = bytes.len() - pos - 1,
            None => self.tail += bytes.len(),
        }
        self.buf.extend_from_slice(bytes);
        if self.tail > self.max_frame {
            self.poisoned = true;
            return Err(FrameError::TooLarge {
                limit: self.max_frame,
            });
        }
        Ok(())
    }

    /// Pops the next complete line (without its `\n`), if one is buffered.
    pub fn next_line(&mut self) -> Option<Vec<u8>> {
        if self.poisoned {
            return None;
        }
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(offset) => {
                let mut line: Vec<u8> = self.buf.drain(..=self.scanned + offset).collect();
                line.pop(); // the `\n`
                self.scanned = 0;
                Some(line)
            }
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }

    /// Whether an unterminated partial line is buffered (drives the read
    /// deadline: a partial frame that never completes is a slow client).
    pub fn has_partial(&self) -> bool {
        !self.poisoned && self.tail > 0
    }

    /// Bytes currently buffered (complete lines not yet popped + tail).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(framer: &mut LineFramer) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(line) = framer.next_line() {
            out.push(String::from_utf8(line).unwrap());
        }
        out
    }

    #[test]
    fn reassembles_lines_across_arbitrary_chunks() {
        let mut f = LineFramer::new(1024);
        f.push(b"hel").unwrap();
        assert!(lines(&mut f).is_empty());
        assert!(f.has_partial());
        f.push(b"lo\nwo").unwrap();
        assert_eq!(lines(&mut f), vec!["hello"]);
        f.push(b"rld\n\nx\n").unwrap();
        assert_eq!(lines(&mut f), vec!["world", "", "x"]);
        assert!(!f.has_partial());
    }

    #[test]
    fn one_byte_reads_work() {
        let mut f = LineFramer::new(16);
        for &b in b"a\nbc\n" {
            f.push(&[b]).unwrap();
        }
        assert_eq!(lines(&mut f), vec!["a", "bc"]);
    }

    #[test]
    fn partial_then_more_lines_interleave() {
        let mut f = LineFramer::new(64);
        f.push(b"first\nsec").unwrap();
        assert_eq!(lines(&mut f), vec!["first"]);
        f.push(b"ond\nthird\n").unwrap();
        assert_eq!(lines(&mut f), vec!["second", "third"]);
    }

    #[test]
    fn oversized_partial_line_poisons() {
        let mut f = LineFramer::new(4);
        f.push(b"ok\n").unwrap();
        assert_eq!(f.push(b"toolong"), Err(FrameError::TooLarge { limit: 4 }));
        // Poisoned: even the previously complete line is withheld (the
        // caller is about to error out and close).
        assert_eq!(f.next_line(), None);
        assert!(f.push(b"x").is_err());
        assert!(!f.has_partial());
    }

    #[test]
    fn exact_cap_line_is_fine() {
        let mut f = LineFramer::new(4);
        f.push(b"abcd\n").unwrap();
        assert_eq!(lines(&mut f), vec!["abcd"]);
    }
}
