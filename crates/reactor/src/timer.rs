//! A hashed timer wheel for connection deadlines.
//!
//! The reactor needs thousands of coarse timers (read/write deadlines, the
//! shutdown drain bound) with O(1) insertion and batched expiry — exactly
//! the regime timer wheels were designed for. The wheel hashes each
//! deadline into one of `slots` buckets of `tick` width; an entry whose
//! deadline lies more than one revolution out carries a `rounds` counter
//! and is skipped (decremented) until its revolution arrives.
//!
//! Cancellation is lazy: the owner validates each fired token (connection
//! generation, armed-deadline instant) and ignores stale ones, which keeps
//! the wheel free of back-pointers and the data structure deterministic —
//! entries fire in insertion order within a slot.

use std::time::{Duration, Instant};

/// One scheduled entry.
#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    token: T,
    /// Remaining full revolutions before this entry fires.
    rounds: u32,
}

/// A fixed-size hashed timer wheel over copyable tokens.
#[derive(Debug)]
pub struct TimerWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    tick: Duration,
    /// Wheel origin; slot `i` covers `origin + i*tick` on revolution 0.
    origin: Instant,
    /// Ticks fully processed so far (cursor = ticked % slots).
    ticked: u64,
    /// Live entries, so idle loops can skip timer bookkeeping entirely.
    len: usize,
}

impl<T: Copy> TimerWheel<T> {
    /// Creates a wheel of `slots` buckets, each `tick` wide, starting at
    /// `now`. `slots` is clamped to at least 2, `tick` to at least 1ms.
    pub fn new(slots: usize, tick: Duration, now: Instant) -> TimerWheel<T> {
        let slots = slots.max(2);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick: tick.max(Duration::from_millis(1)),
            origin: now,
            ticked: 0,
            len: 0,
        }
    }

    /// Number of scheduled (possibly stale) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tick `fire_at` hashes to, relative to the wheel origin.
    fn tick_index(&self, fire_at: Instant) -> u64 {
        let since = fire_at.saturating_duration_since(self.origin);
        // Round up: an entry never fires before its deadline.
        let ticks = since.as_nanos().div_ceil(self.tick.as_nanos().max(1));
        (ticks as u64).max(self.ticked + 1)
    }

    /// Schedules `token` to fire at (or just after) `fire_at`.
    pub fn schedule(&mut self, token: T, fire_at: Instant) {
        let tick = self.tick_index(fire_at);
        let ahead = tick - self.ticked;
        let slot = (tick % self.slots.len() as u64) as usize;
        let rounds = ((ahead - 1) / self.slots.len() as u64) as u32;
        self.slots[slot].push(Entry { token, rounds });
        self.len += 1;
    }

    /// Advances the wheel to `now`, appending every fired token to `out`
    /// in deterministic (slot, insertion) order.
    pub fn advance(&mut self, now: Instant, out: &mut Vec<T>) {
        if self.len == 0 {
            // Keep the cursor current so a later schedule() maps correctly.
            self.ticked = self.elapsed_ticks(now);
            return;
        }
        let target = self.elapsed_ticks(now);
        while self.ticked < target {
            self.ticked += 1;
            let slot = (self.ticked % self.slots.len() as u64) as usize;
            let bucket = &mut self.slots[slot];
            let mut kept = 0usize;
            for i in 0..bucket.len() {
                if bucket[i].rounds == 0 {
                    out.push(bucket[i].token);
                    self.len -= 1;
                } else {
                    bucket[i].rounds -= 1;
                    bucket[kept] = bucket[i];
                    kept += 1;
                }
            }
            bucket.truncate(kept);
        }
    }

    /// Whole ticks elapsed between the origin and `now`.
    fn elapsed_ticks(&self, now: Instant) -> u64 {
        (now.saturating_duration_since(self.origin).as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// How long until the next tick boundary that could fire an entry —
    /// the poll timeout while timers are pending. `None` when the wheel is
    /// empty (sleep indefinitely).
    pub fn next_wake(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let next_tick = self.ticked + 1;
        let at = self.origin + self.tick * (next_tick as u32).max(1);
        Some(at.saturating_duration_since(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_or_after_the_deadline_in_order() {
        let t0 = Instant::now();
        let mut w: TimerWheel<u32> = TimerWheel::new(8, Duration::from_millis(10), t0);
        w.schedule(1, t0 + Duration::from_millis(25));
        w.schedule(2, t0 + Duration::from_millis(5));
        w.schedule(3, t0 + Duration::from_millis(25));
        assert_eq!(w.len(), 3);

        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_millis(4), &mut fired);
        assert!(fired.is_empty(), "nothing is due at 4ms");

        w.advance(t0 + Duration::from_millis(12), &mut fired);
        assert_eq!(fired, vec![2]);

        fired.clear();
        w.advance(t0 + Duration::from_millis(100), &mut fired);
        assert_eq!(fired, vec![1, 3], "same slot fires in insertion order");
        assert!(w.is_empty());
    }

    #[test]
    fn entries_beyond_one_revolution_wait_their_round() {
        let t0 = Instant::now();
        let mut w: TimerWheel<&'static str> = TimerWheel::new(4, Duration::from_millis(10), t0);
        w.schedule("late", t0 + Duration::from_millis(95)); // >2 revolutions
        w.schedule("soon", t0 + Duration::from_millis(15));
        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_millis(50), &mut fired);
        assert_eq!(fired, vec!["soon"]);
        fired.clear();
        w.advance(t0 + Duration::from_millis(91), &mut fired);
        assert!(fired.is_empty(), "late is still a round away");
        w.advance(t0 + Duration::from_millis(101), &mut fired);
        assert_eq!(fired, vec!["late"]);
    }

    #[test]
    fn next_wake_tracks_pending_entries() {
        let t0 = Instant::now();
        let mut w: TimerWheel<u8> = TimerWheel::new(8, Duration::from_millis(10), t0);
        assert_eq!(w.next_wake(t0), None);
        w.schedule(1, t0 + Duration::from_millis(30));
        let wake = w.next_wake(t0).unwrap();
        assert!(wake <= Duration::from_millis(10));
        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_millis(40), &mut fired);
        assert_eq!(fired, vec![1]);
        assert_eq!(w.next_wake(t0), None);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_tick() {
        let t0 = Instant::now();
        let mut w: TimerWheel<u8> = TimerWheel::new(8, Duration::from_millis(10), t0);
        let mut fired = Vec::new();
        w.advance(t0 + Duration::from_millis(35), &mut fired); // cursor moves idle
        w.schedule(9, t0); // already elapsed
        w.advance(t0 + Duration::from_millis(45), &mut fired);
        assert_eq!(fired, vec![9]);
    }
}
