//! Event-loop observability counters and gauges.
//!
//! One [`ReactorMetrics`] is shared between the loop thread, the workers,
//! and whoever serves the `stats` verb. Everything is a relaxed atomic:
//! the counters are monotone tallies whose exact interleaving does not
//! matter, and the gauges are last-writer-wins snapshots maintained by the
//! loop thread alone. [`snapshot`](ReactorMetrics::snapshot) returns plain
//! `(name, value)` pairs so the service layer can render them in its own
//! wire format without this crate growing a serializer dependency.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters and gauges for one reactor instance.
#[derive(Debug, Default)]
pub struct ReactorMetrics {
    /// Event-loop iterations (poll wakeups).
    pub ticks: AtomicU64,
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections closed (any reason).
    pub closed: AtomicU64,
    /// Connections refused because `max_connections` was reached.
    pub refused: AtomicU64,
    /// Complete frames parsed off sockets.
    pub frames: AtomicU64,
    /// Responses flushed to sockets.
    pub responses: AtomicU64,
    /// Frames answered with `overloaded` because the job queue was full.
    pub rejected_overload: AtomicU64,
    /// Connections answered with `frame_too_large` and closed.
    pub frame_too_large: AtomicU64,
    /// Connections closed by a read or write deadline.
    pub deadline_closes: AtomicU64,
    /// Connections force-closed when the drain deadline expired.
    pub drain_force_closes: AtomicU64,
    /// Current job-queue depth (gauge).
    pub queue_depth: AtomicU64,
    /// Current open connections (gauge).
    pub connections: AtomicU64,
}

impl ReactorMetrics {
    /// Creates a zeroed metrics block.
    pub fn new() -> ReactorMetrics {
        ReactorMetrics::default()
    }

    /// Adds one to `counter`.
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets a gauge to `value`.
    pub(crate) fn set(gauge: &AtomicU64, value: u64) {
        gauge.store(value, Ordering::Relaxed);
    }

    /// A deterministic, stably-ordered view of every counter and gauge.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("ticks", read(&self.ticks)),
            ("accepted", read(&self.accepted)),
            ("closed", read(&self.closed)),
            ("refused", read(&self.refused)),
            ("frames", read(&self.frames)),
            ("responses", read(&self.responses)),
            ("rejected_overload", read(&self.rejected_overload)),
            ("frame_too_large", read(&self.frame_too_large)),
            ("deadline_closes", read(&self.deadline_closes)),
            ("drain_force_closes", read(&self.drain_force_closes)),
            ("queue_depth", read(&self.queue_depth)),
            ("connections", read(&self.connections)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps_in_stable_order() {
        let m = ReactorMetrics::new();
        ReactorMetrics::bump(&m.frames);
        ReactorMetrics::bump(&m.frames);
        ReactorMetrics::set(&m.queue_depth, 5);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        assert_eq!(names[0], "ticks");
        let get = |name: &str| snap.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        assert_eq!(get("frames"), Some(2));
        assert_eq!(get("queue_depth"), Some(5));
        assert_eq!(get("closed"), Some(0));
    }
}
