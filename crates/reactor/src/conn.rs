//! Per-connection state machine: framing, pipelining, and write buffering.
//!
//! A connection may pipeline many requests; solves complete on worker
//! threads in whatever order the cache and solver dictate, but responses
//! must leave the socket in request order. Each parsed frame is assigned a
//! monotone sequence number; completions park in an ordered map until the
//! next-expected sequence arrives, then flush contiguously into the write
//! buffer. The write buffer tracks a consumed prefix so a partial
//! nonblocking write resumes exactly where it stopped.
//!
//! This module is pure bookkeeping — no sockets — so the ordering and
//! partial-write logic is testable without an event loop.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::frame::{FrameError, LineFramer};

/// State for one client connection.
#[derive(Debug)]
pub struct Conn {
    framer: LineFramer,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Sequence number the next parsed frame will receive.
    next_seq: u64,
    /// Sequence number the next flushed response must carry.
    next_out: u64,
    /// Completed responses waiting for their turn; `None` marks a frame
    /// that produces no response bytes.
    ready: BTreeMap<u64, Option<String>>,
    /// Frames dispatched to workers and not yet completed.
    inflight: usize,
    /// The peer half-closed its read side (EOF seen).
    read_closed: bool,
    /// Fatal condition: close as soon as the write buffer drains.
    closing: bool,
    read_deadline: Option<Instant>,
    write_deadline: Option<Instant>,
}

impl Conn {
    /// Creates connection state with the given per-frame byte cap.
    pub fn new(max_frame: usize) -> Conn {
        Conn {
            framer: LineFramer::new(max_frame),
            write_buf: Vec::new(),
            write_pos: 0,
            next_seq: 0,
            next_out: 0,
            ready: BTreeMap::new(),
            inflight: 0,
            read_closed: false,
            closing: false,
            read_deadline: None,
            write_deadline: None,
        }
    }

    /// Feeds freshly read bytes to the framer.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameError::TooLarge`] when the frame cap is exceeded.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Result<(), FrameError> {
        self.framer.push(bytes)
    }

    /// Pops the next complete request line, if one is buffered.
    pub fn next_line(&mut self) -> Option<Vec<u8>> {
        self.framer.next_line()
    }

    /// Whether an unterminated partial frame is buffered.
    pub fn has_partial_frame(&self) -> bool {
        self.framer.has_partial()
    }

    /// Assigns the sequence number for a newly dispatched frame.
    pub fn assign_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight += 1;
        seq
    }

    /// Records the outcome of frame `seq`; `None` means the frame emits no
    /// bytes. Stale or duplicate sequence numbers are ignored.
    pub fn complete(&mut self, seq: u64, response: Option<String>) {
        if seq < self.next_out || self.ready.contains_key(&seq) {
            return;
        }
        self.ready.insert(seq, response);
        self.inflight = self.inflight.saturating_sub(1);
    }

    /// Moves every contiguous completed response into the write buffer,
    /// newline-terminated, returning how many response lines moved.
    pub fn flush_ready(&mut self) -> usize {
        let mut moved = 0;
        while let Some(response) = self.ready.remove(&self.next_out) {
            self.next_out += 1;
            if let Some(text) = response {
                self.write_buf.extend_from_slice(text.as_bytes());
                self.write_buf.push(b'\n');
                moved += 1;
            }
        }
        moved
    }

    /// The not-yet-written suffix of the write buffer.
    pub fn pending_write(&self) -> &[u8] {
        &self.write_buf[self.write_pos..]
    }

    /// Records that `n` bytes of [`pending_write`](Conn::pending_write)
    /// reached the socket; reclaims the buffer once fully flushed.
    pub fn consume_written(&mut self, n: usize) {
        self.write_pos = (self.write_pos + n).min(self.write_buf.len());
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
    }

    /// Whether unwritten response bytes are pending.
    pub fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Whether any dispatched frame has not yet flushed into the write
    /// buffer (in flight on a worker, or parked out of order).
    pub fn has_unanswered(&self) -> bool {
        self.inflight > 0 || !self.ready.is_empty()
    }

    /// Frames currently in flight on workers.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Marks the peer's write side as closed (EOF observed).
    pub fn mark_read_closed(&mut self) {
        self.read_closed = true;
    }

    /// Whether EOF was observed on the read side.
    pub fn read_closed(&self) -> bool {
        self.read_closed
    }

    /// Marks the connection for closure once the write buffer drains.
    pub fn mark_closing(&mut self) {
        self.closing = true;
    }

    /// Whether the connection is fatally marked for closure.
    pub fn closing(&self) -> bool {
        self.closing
    }

    /// True when nothing further can ever be written: all dispatched work
    /// answered and the write buffer flushed.
    pub fn fully_flushed(&self) -> bool {
        !self.wants_write() && !self.has_unanswered()
    }

    /// Arms the read (partial-frame) deadline.
    pub fn arm_read_deadline(&mut self, at: Instant) {
        self.read_deadline = Some(at);
    }

    /// Clears the read deadline.
    pub fn clear_read_deadline(&mut self) {
        self.read_deadline = None;
    }

    /// The armed read deadline, if any.
    pub fn read_deadline(&self) -> Option<Instant> {
        self.read_deadline
    }

    /// Arms the write (slow-consumer) deadline.
    pub fn arm_write_deadline(&mut self, at: Instant) {
        self.write_deadline = Some(at);
    }

    /// Clears the write deadline.
    pub fn clear_write_deadline(&mut self) {
        self.write_deadline = None;
    }

    /// The armed write deadline, if any.
    pub fn write_deadline(&self) -> Option<Instant> {
        self.write_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_completions_flush_in_request_order() {
        let mut c = Conn::new(1024);
        let a = c.assign_seq();
        let b = c.assign_seq();
        let d = c.assign_seq();
        assert_eq!((a, b, d), (0, 1, 2));
        assert_eq!(c.inflight(), 3);

        c.complete(d, Some("third".into()));
        assert_eq!(c.flush_ready(), 0, "seq 0 still outstanding");
        c.complete(a, Some("first".into()));
        assert_eq!(c.flush_ready(), 1);
        c.complete(b, Some("second".into()));
        assert_eq!(c.flush_ready(), 2, "second unblocks parked third");
        assert_eq!(c.pending_write(), b"first\nsecond\nthird\n");
        assert!(!c.fully_flushed());
        c.consume_written(c.pending_write().len());
        assert!(c.fully_flushed());
    }

    #[test]
    fn silent_frames_unblock_ordering_without_bytes() {
        let mut c = Conn::new(1024);
        let a = c.assign_seq();
        let b = c.assign_seq();
        c.complete(b, Some("answer".into()));
        c.complete(a, None);
        assert_eq!(c.flush_ready(), 1);
        assert_eq!(c.pending_write(), b"answer\n");
    }

    #[test]
    fn partial_writes_resume_where_they_stopped() {
        let mut c = Conn::new(1024);
        let s = c.assign_seq();
        c.complete(s, Some("abcdef".into()));
        c.flush_ready();
        c.consume_written(3);
        assert_eq!(c.pending_write(), b"def\n");
        assert!(c.wants_write());
        c.consume_written(4);
        assert!(!c.wants_write());
        assert_eq!(c.pending_write(), b"");
    }

    #[test]
    fn duplicate_and_stale_completions_are_ignored() {
        let mut c = Conn::new(1024);
        let s = c.assign_seq();
        c.complete(s, Some("one".into()));
        c.complete(s, Some("dup".into()));
        assert_eq!(c.flush_ready(), 1);
        c.complete(s, Some("late".into()));
        assert_eq!(c.flush_ready(), 0);
        assert_eq!(c.pending_write(), b"one\n");
    }
}
