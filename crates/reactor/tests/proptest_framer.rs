//! Property tests pinning the reactor's incremental [`LineFramer`] to the
//! blocking server's framing semantics: however a byte stream is chunked
//! across nonblocking reads, the sequence of yielded frames must be
//! byte-identical to splitting the whole stream on `\n` at once.
//!
//! This is the contract the differential service tests build on — if the
//! framer ever diverged under some adversarial read pattern, the reactor
//! could return different responses than the blocking path for the same
//! client bytes.

use awb_reactor::{FrameError, LineFramer};
use proptest::prelude::*;

/// The blocking server's framing, run on the complete stream: frames are
/// the `\n`-separated segments, terminator excluded; an unterminated tail
/// is not a frame.
fn reference_frames(stream: &[u8]) -> (Vec<Vec<u8>>, Vec<u8>) {
    let mut frames = Vec::new();
    let mut rest = stream;
    while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
        frames.push(rest[..pos].to_vec());
        rest = &rest[pos + 1..];
    }
    (frames, rest.to_vec())
}

/// Cuts `stream` into chunks whose sizes cycle through `cuts` (1-byte
/// reads, split newlines, multi-frame gulps — whatever the strategy drew).
fn chunked<'a>(stream: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut chunks = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < stream.len() {
        let step = cuts.get(i % cuts.len()).copied().unwrap_or(1).max(1);
        let end = (at + step).min(stream.len());
        chunks.push(&stream[at..end]);
        at = end;
        i += 1;
    }
    chunks
}

/// A byte stream biased toward framing edge cases: newline-heavy
/// alphabets, empty frames, and frames around the cap boundary.
fn stream_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u8>(),
            any::<u8>(),
            Just(b'\n'), // newline-heavy: empty and split frames
            Just(b'{'),
            Just(0xFFu8), // invalid UTF-8: framing is byte-level
        ],
        0..512,
    )
}

proptest! {
    /// Under any chunking, the incremental framer yields exactly the
    /// reference frame sequence, and afterwards holds exactly the
    /// reference's unterminated tail.
    #[test]
    fn incremental_framing_matches_blocking_split(
        stream in stream_strategy(),
        cuts in proptest::collection::vec(1usize..64, 1..8),
    ) {
        let (expected, tail) = reference_frames(&stream);
        // Cap above the stream length: TooLarge cannot fire.
        let mut framer = LineFramer::new(stream.len() + 1);
        let mut got = Vec::new();
        for chunk in chunked(&stream, &cuts) {
            framer.push(chunk).expect("cap exceeds stream length");
            while let Some(line) = framer.next_line() {
                got.push(line);
            }
        }
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(framer.has_partial(), !tail.is_empty());
    }

    /// Draining lines between pushes (the event loop's actual pattern)
    /// and draining only at the end yield the same frames.
    #[test]
    fn drain_timing_is_irrelevant(
        stream in stream_strategy(),
        cuts in proptest::collection::vec(1usize..16, 1..4),
    ) {
        let mut eager = LineFramer::new(stream.len() + 1);
        let mut eager_lines = Vec::new();
        for chunk in chunked(&stream, &cuts) {
            eager.push(chunk).expect("cap exceeds stream length");
            while let Some(line) = eager.next_line() {
                eager_lines.push(line);
            }
        }
        let mut lazy = LineFramer::new(stream.len() + 1);
        lazy.push(&stream).expect("cap exceeds stream length");
        let mut lazy_lines = Vec::new();
        while let Some(line) = lazy.next_line() {
            lazy_lines.push(line);
        }
        prop_assert_eq!(eager_lines, lazy_lines);
    }

    /// With 1-byte reads (so the cap is checked after every byte), the
    /// framer errors exactly when some frame — or the unterminated tail —
    /// exceeds the cap, and every frame before the oversized one was
    /// already yielded byte-identically.
    #[test]
    fn cap_fires_exactly_on_oversized_frames(
        stream in stream_strategy(),
        cap in 1usize..32,
    ) {
        let (expected, tail) = reference_frames(&stream);
        let mut framer = LineFramer::new(cap);
        let mut got = Vec::new();
        let mut error = None;
        for &b in &stream {
            match framer.push(&[b]) {
                Ok(()) => {
                    while let Some(line) = framer.next_line() {
                        got.push(line);
                    }
                }
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        let oversized = expected.iter().position(|f| f.len() > cap);
        match (oversized, error) {
            (Some(i), Some(FrameError::TooLarge { limit })) => {
                prop_assert_eq!(limit, cap);
                prop_assert_eq!(&got, &expected[..i]);
            }
            (None, Some(FrameError::TooLarge { limit })) => {
                // No complete frame is oversized: the error must come from
                // the unterminated tail outgrowing the cap.
                prop_assert_eq!(limit, cap);
                prop_assert!(tail.len() > cap, "error without an oversized frame or tail");
                prop_assert_eq!(&got, &expected);
            }
            (None, None) => prop_assert_eq!(&got, &expected),
            (Some(i), None) => {
                prop_assert!(false, "frame {} exceeds cap {} but no error fired", i, cap);
            }
        }
    }
}
