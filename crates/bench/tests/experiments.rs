//! Shape tests for the experiment drivers (the same code the figure
//! binaries and EXPERIMENTS.md rely on).

use awb_bench::experiments::{
    fig2_paths, fig3, fig4, paper_random_instance, scenario1_sweep, scenario2_report,
    FLOW_DEMAND_MBPS, NUM_FLOWS,
};

#[test]
fn scenario1_rows_follow_the_closed_forms() {
    let lambdas = [0.1, 0.25, 0.4];
    let rows = scenario1_sweep(&lambdas, 5_000);
    assert_eq!(rows.len(), lambdas.len());
    for r in &rows {
        assert!((r.optimal_mbps - (1.0 - r.lambda) * 54.0).abs() < 1e-6);
        assert!((r.idle_estimate_mbps - (1.0 - 2.0 * r.lambda) * 54.0).abs() < 1e-6);
        // The behavioural estimate lies between the pessimistic idle
        // estimate and the optimum.
        assert!(r.sim_estimate_mbps >= r.idle_estimate_mbps - 1.5);
        assert!(r.sim_estimate_mbps <= r.optimal_mbps + 1.5);
    }
}

#[test]
fn scenario2_report_reproduces_the_constants() {
    let r = scenario2_report();
    assert!((r.optimal_mbps - 16.2).abs() < 1e-6);
    assert!((r.all54_bound_mbps - 13.5).abs() < 1e-9);
    assert!((r.l1_36_bound_mbps - 108.0 / 7.0).abs() < 1e-9);
    assert!((r.c1_time_share - 1.2).abs() < 1e-9);
    assert!((r.c2_time_share - 1.05).abs() < 1e-9);
    assert!(r.eq9_upper_bound_mbps + 1e-6 >= 16.2);
    assert!(r.schedule.contains("36 Mbps"));
}

#[test]
fn fig3_orders_the_metrics() {
    let rows = fig3();
    let first_fail = |metric: &str| {
        rows.iter()
            .find(|r| r.metric == metric && !r.admitted)
            .map(|r| r.flow)
            .unwrap_or(NUM_FLOWS + 1)
    };
    let (h, e, a) = (
        first_fail("hop count"),
        first_fail("e2eTD"),
        first_fail("average-e2eD"),
    );
    assert!(h <= e && e <= a, "ordering violated: {h} {e} {a}");
    // Admitted flows always cover the demand.
    for r in &rows {
        if r.admitted {
            assert!(r.available_mbps + 1e-9 >= FLOW_DEMAND_MBPS);
            assert!(r.hops > 0);
        }
    }
}

#[test]
fn fig4_estimator_errors_rank_background_aware_metrics_first() {
    let (rows, errors) = fig4();
    assert!(!rows.is_empty());
    assert_eq!(errors.len(), 5);
    let err_of = |label: &str| {
        errors
            .iter()
            .find(|e| e.estimator == label)
            .map(|e| e.mean_abs_error_mbps)
            .expect("estimator present")
    };
    let conservative = err_of("conservative clique constraint");
    let expected_t = err_of("expected clique transmission time");
    for other in [
        "clique constraint",
        "bottleneck node bandwidth",
        "min of the above two",
    ] {
        assert!(
            conservative < err_of(other) && expected_t < err_of(other),
            "background-aware estimators must beat {other}"
        );
    }
    // Eq. 12 never exceeds either of its parts.
    for r in &rows {
        assert!(r.min_both_mbps <= r.clique_mbps + 1e-9);
        assert!(r.min_both_mbps <= r.bottleneck_mbps + 1e-9);
    }
}

#[test]
fn fig2_paths_cover_every_metric_and_flow() {
    let paths = fig2_paths();
    let (_, pairs) = paper_random_instance();
    for metric in ["hop count", "e2eTD", "average-e2eD"] {
        let count = paths.iter().filter(|p| p.metric == metric).count();
        assert_eq!(count, pairs.len(), "{metric}");
    }
    // Routed paths have at least 2 nodes.
    for p in &paths {
        assert!(p.nodes.is_empty() || p.nodes.len() >= 2);
    }
}
