//! Row types emitted by the experiment drivers.

use serde::Serialize;

/// One λ point of the Scenario I sweep (E1).
#[derive(Debug, Clone, Serialize)]
pub struct Scenario1Row {
    /// Background time share per link.
    pub lambda: f64,
    /// Eq. 6 optimum: `(1 − λ) · r`.
    pub optimal_mbps: f64,
    /// Idle-time estimate against the non-overlapping background:
    /// `(1 − 2λ) · r`.
    pub idle_estimate_mbps: f64,
    /// Idle-time estimate fed by the CSMA simulator's measured ratios.
    pub sim_estimate_mbps: f64,
}

/// The Scenario II report (E2).
#[derive(Debug, Clone, Serialize)]
pub struct Scenario2Report {
    /// The Eq. 6 optimum (paper: 16.2).
    pub optimal_mbps: f64,
    /// Eq. 7 bound for the all-54 rate vector (paper: 13.5).
    pub all54_bound_mbps: f64,
    /// Eq. 7 bound for (36, 54, 54, 54) (paper: 108/7 ≈ 15.43).
    pub l1_36_bound_mbps: f64,
    /// Clique time share of C1 at the optimum (paper: 1.2).
    pub c1_time_share: f64,
    /// Clique time share of C2 at the optimum (paper: 1.05).
    pub c2_time_share: f64,
    /// The corrected Eq. 9 upper bound.
    pub eq9_upper_bound_mbps: f64,
    /// Human-readable optimal schedule.
    pub schedule: String,
}

/// One flow of the Fig. 3 experiment under one routing metric (E4).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Row {
    /// Routing metric label.
    pub metric: String,
    /// Arrival index (1-based, as the paper plots).
    pub flow: usize,
    /// Ground-truth available bandwidth of the chosen path (Eq. 6).
    pub available_mbps: f64,
    /// Whether the 2 Mbps demand was admitted.
    pub admitted: bool,
    /// Hop count of the chosen path (0 = no path).
    pub hops: usize,
}

/// One flow of the Fig. 4 experiment (E5): the five estimators vs the LP
/// ground truth on the path chosen by average-e2eD.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// Arrival index (1-based).
    pub flow: usize,
    /// Ground truth (Eq. 6).
    pub truth_mbps: f64,
    /// Eq. 11 clique constraint.
    pub clique_mbps: f64,
    /// Eq. 10 bottleneck node bandwidth.
    pub bottleneck_mbps: f64,
    /// Eq. 12 min of the two.
    pub min_both_mbps: f64,
    /// Eq. 13 conservative clique constraint.
    pub conservative_mbps: f64,
    /// Eq. 15 expected clique transmission time.
    pub expected_time_mbps: f64,
}

/// A path found in the Fig. 2 topology (E3).
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Path {
    /// Routing metric label.
    pub metric: String,
    /// Flow index (1-based).
    pub flow: usize,
    /// Node ids along the path (empty = unroutable).
    pub nodes: Vec<usize>,
}

/// Mean absolute estimation error per estimator, the Fig. 4 summary.
#[derive(Debug, Clone, Serialize)]
pub struct EstimatorError {
    /// Estimator label (the paper's name).
    pub estimator: String,
    /// Mean |estimate − truth| over the admitted flows, in Mbps.
    pub mean_abs_error_mbps: f64,
    /// Mean signed error (positive = overestimates).
    pub mean_signed_error_mbps: f64,
}
