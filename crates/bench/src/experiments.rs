//! Drivers for the paper's experiments (E1–E5 in DESIGN.md).

use crate::rows::{EstimatorError, Fig2Path, Fig3Row, Fig4Row, Scenario1Row, Scenario2Report};
use awb_core::bounds::{clique_time_share, clique_upper_bound, UpperBoundOptions};
use awb_core::{
    available_bandwidth, feasibility, AvailableBandwidthOptions, Flow, Schedule, Session,
};
use awb_estimate::{Estimator, Hop, IdleMap};
use awb_net::{NodeId, SinrModel};
use awb_phy::Rate;
use awb_routing::{admit_sequentially, shortest_path, AdmissionConfig, RoutingMetric};
use awb_sets::RatedSet;
use awb_sim::{SimConfig, Simulator};
use awb_workloads::{
    connected_pairs, RandomTopology, RandomTopologyConfig, ScenarioOne, ScenarioTwo,
};

/// Default demand per flow in the random-topology experiments (paper §5.2).
pub const FLOW_DEMAND_MBPS: f64 = 2.0;
/// Default number of flows (paper §5.2).
pub const NUM_FLOWS: usize = 8;
/// Seed for drawing source/destination pairs.
pub const PAIRS_SEED: u64 = 5;

/// E1 — Scenario I sweep: optimal vs idle-time-estimated available
/// bandwidth of the path over `L3` as background load grows.
pub fn scenario1_sweep(lambdas: &[f64], sim_slots: u64) -> Vec<Scenario1Row> {
    let s = ScenarioOne::new();
    let m = s.model();
    let r = s.rate().as_mbps();
    // Every λ queries the same link universe: one session compiles the
    // instance once and answers the whole sweep from it.
    let mut session = Session::new(m, AvailableBandwidthOptions::default());
    lambdas
        .iter()
        .map(|&lambda| {
            let optimal = session
                .query(&s.background(lambda), &s.new_path())
                .expect("scenario I backgrounds are feasible for λ ≤ 0.5")
                .bandwidth_mbps();
            let idle = IdleMap::from_schedule(m, &s.naive_background_schedule(lambda));
            let hops = Hop::for_path(m, &idle, &s.new_path()).expect("L3 is live");
            let idle_estimate = Estimator::BottleneckNode.estimate(m, &hops);

            let mut sim = Simulator::new(
                m,
                SimConfig {
                    slots: sim_slots,
                    ..SimConfig::default()
                },
            );
            for flow in s.background(lambda) {
                sim.add_flow(flow.path().clone(), Some(flow.demand_mbps()));
            }
            let report = sim.run(m);
            let sim_idle = IdleMap::from_ratios(report.node_idle_ratio);
            let sim_hops = Hop::for_path(m, &sim_idle, &s.new_path()).expect("L3 is live");
            let sim_estimate = Estimator::BottleneckNode.estimate(m, &sim_hops);
            let _ = r;
            Scenario1Row {
                lambda,
                optimal_mbps: optimal,
                idle_estimate_mbps: idle_estimate,
                sim_estimate_mbps: sim_estimate,
            }
        })
        .collect()
}

/// E2 — the Scenario II analysis (§3.1, §5.1).
pub fn scenario2_report() -> Scenario2Report {
    let s = ScenarioTwo::new();
    let m = s.model();
    let [l1, l2, l3, l4] = s.links();
    let r54 = Rate::from_mbps(54.0);
    let r36 = Rate::from_mbps(36.0);
    let out = available_bandwidth(m, &[], &s.path(), &AvailableBandwidthOptions::default())
        .expect("scenario II is feasible");
    let f = out.bandwidth_mbps();
    let all54: Vec<_> = [l1, l2, l3, l4].into_iter().map(|l| (l, r54)).collect();
    let b1 =
        awb_core::bounds::equal_throughput_clique_bound(m, &all54).expect("non-empty assignment");
    let with36 = vec![(l1, r36), (l2, r54), (l3, r54), (l4, r54)];
    let b2 =
        awb_core::bounds::equal_throughput_clique_bound(m, &with36).expect("non-empty assignment");
    let c1: RatedSet = [l1, l2, l3, l4].into_iter().map(|l| (l, r54)).collect();
    let c2: RatedSet = vec![(l1, r36), (l2, r54), (l3, r54)].into_iter().collect();
    let eq9 = clique_upper_bound(m, &[], &s.path(), &UpperBoundOptions::default())
        .expect("scenario II is small enough for Eq. 9");
    Scenario2Report {
        optimal_mbps: f,
        all54_bound_mbps: b1,
        l1_36_bound_mbps: b2,
        c1_time_share: clique_time_share(&c1, |_| f),
        c2_time_share: clique_time_share(&c2, |_| f),
        eq9_upper_bound_mbps: eq9,
        schedule: out.schedule().to_string(),
    }
}

/// The random topology and flow endpoints shared by E3/E4/E5.
///
/// The default seeds give a representative instance (metric failure order
/// 3 < 4 < 7, close to the paper's 3 < 5 < 8); they can be overridden via
/// the `AWB_TOPO_SEED` and `AWB_PAIRS_SEED` environment variables to
/// explore other draws.
pub fn paper_random_instance() -> (SinrModel, Vec<(NodeId, NodeId)>) {
    let topo_seed = std::env::var("AWB_TOPO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(RandomTopologyConfig::default().seed);
    let pairs_seed = std::env::var("AWB_PAIRS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(PAIRS_SEED);
    let rt = RandomTopology::generate(RandomTopologyConfig {
        seed: topo_seed,
        ..RandomTopologyConfig::default()
    });
    let pairs = connected_pairs(rt.model(), NUM_FLOWS, 2..=4, pairs_seed);
    (rt.into_model(), pairs)
}

/// E3 — the paths each routing metric finds (Fig. 2's solid vs dotted
/// arrows).
pub fn fig2_paths() -> Vec<Fig2Path> {
    let (model, pairs) = paper_random_instance();
    let mut out = Vec::new();
    for metric in RoutingMetric::ALL {
        let outcomes = admit_sequentially(
            &model,
            &pairs,
            metric,
            &AdmissionConfig {
                stop_on_first_failure: false,
                ..AdmissionConfig::default()
            },
        )
        .expect("admission runs on feasible backgrounds");
        for o in outcomes {
            let nodes = o
                .path
                .as_ref()
                .and_then(|p| p.nodes(model.topology()).ok())
                .map(|ns| ns.into_iter().map(|n| n.index()).collect())
                .unwrap_or_default();
            out.push(Fig2Path {
                metric: metric.label().to_string(),
                flow: o.index + 1,
                nodes,
            });
        }
    }
    out
}

/// The routed paths of E3 as `(metric index, flow, Path)` triples.
pub type RoutedPaths = Vec<(usize, usize, awb_net::Path)>;

/// E3 (rendering) — the routed paths for the SVG renderer.
pub fn fig2_routed_paths() -> (SinrModel, Vec<(NodeId, NodeId)>, RoutedPaths) {
    let (model, pairs) = paper_random_instance();
    let mut out = Vec::new();
    for (mi, metric) in RoutingMetric::ALL.into_iter().enumerate() {
        let outcomes = admit_sequentially(
            &model,
            &pairs,
            metric,
            &AdmissionConfig {
                stop_on_first_failure: false,
                ..AdmissionConfig::default()
            },
        )
        .expect("admission runs on feasible backgrounds");
        for o in outcomes {
            if let Some(p) = o.path {
                out.push((mi, o.index + 1, p));
            }
        }
    }
    (model, pairs, out)
}

/// E4 — Fig. 3: per-flow available bandwidth under each routing metric,
/// flows joining one by one until the first failure.
pub fn fig3() -> Vec<Fig3Row> {
    let (model, pairs) = paper_random_instance();
    let mut rows = Vec::new();
    for metric in RoutingMetric::ALL {
        let outcomes = admit_sequentially(&model, &pairs, metric, &AdmissionConfig::default())
            .expect("admission runs on feasible backgrounds");
        for o in outcomes {
            rows.push(Fig3Row {
                metric: metric.label().to_string(),
                flow: o.index + 1,
                available_mbps: o.available_mbps,
                admitted: o.admitted,
                hops: o.path.as_ref().map_or(0, awb_net::Path::len),
            });
        }
    }
    rows
}

/// E5 — Fig. 4: the five §4 estimators vs the Eq. 6 ground truth on the
/// paths found by average-e2eD, as flows join one by one.
pub fn fig4() -> (Vec<Fig4Row>, Vec<EstimatorError>) {
    let (model, pairs) = paper_random_instance();
    let mut admitted: Vec<Flow> = Vec::new();
    let mut rows = Vec::new();
    // Ground-truth queries share one session across the admission loop, so
    // flows touching previously seen link universes skip recompilation.
    let mut session = Session::new(&model, AvailableBandwidthOptions::default());
    for (index, &(src, dst)) in pairs.iter().enumerate() {
        let schedule = if admitted.is_empty() {
            Schedule::empty()
        } else {
            feasibility::min_airtime(&model, &admitted)
                .expect("admitted background is feasible")
                .1
        };
        let idle = IdleMap::from_schedule(&model, &schedule);
        let Some(path) = shortest_path(&model, &idle, RoutingMetric::AverageE2eDelay, src, dst)
        else {
            break;
        };
        let truth = session
            .query(&admitted, &path)
            .expect("admitted background is feasible")
            .bandwidth_mbps();
        let hops = Hop::for_path(&model, &idle, &path).expect("routed paths are live");
        let est = |e: Estimator| e.estimate(&model, &hops);
        rows.push(Fig4Row {
            flow: index + 1,
            truth_mbps: truth,
            clique_mbps: est(Estimator::CliqueConstraint),
            bottleneck_mbps: est(Estimator::BottleneckNode),
            min_both_mbps: est(Estimator::MinOfBoth),
            conservative_mbps: est(Estimator::ConservativeClique),
            expected_time_mbps: est(Estimator::ExpectedCliqueTime),
        });
        if truth + 1e-9 < FLOW_DEMAND_MBPS {
            break; // the paper stops when a demand cannot be met
        }
        admitted.push(Flow::new(path, FLOW_DEMAND_MBPS).expect("demand is valid"));
    }

    let errors = Estimator::ALL
        .iter()
        .map(|&e| {
            let pick = |r: &Fig4Row| match e {
                Estimator::CliqueConstraint => r.clique_mbps,
                Estimator::BottleneckNode => r.bottleneck_mbps,
                Estimator::MinOfBoth => r.min_both_mbps,
                Estimator::ConservativeClique => r.conservative_mbps,
                Estimator::ExpectedCliqueTime => r.expected_time_mbps,
            };
            let n = rows.len().max(1) as f64;
            let mean_abs = rows
                .iter()
                .map(|r| (pick(r) - r.truth_mbps).abs())
                .sum::<f64>()
                / n;
            let mean_signed = rows.iter().map(|r| pick(r) - r.truth_mbps).sum::<f64>() / n;
            EstimatorError {
                estimator: e.label().to_string(),
                mean_abs_error_mbps: mean_abs,
                mean_signed_error_mbps: mean_signed,
            }
        })
        .collect();
    (rows, errors)
}
