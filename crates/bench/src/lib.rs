//! Experiment drivers for regenerating every table and figure of the paper
//! (see DESIGN.md's experiment index), shared between the `fig*`/`scenario*`
//! binaries and the Criterion benches.
//!
//! Each driver returns machine-readable row types (serde-serializable) so
//! EXPERIMENTS.md can be regenerated from the same data the binaries print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod rows;
pub mod svg;
pub mod table;
pub mod topo;
