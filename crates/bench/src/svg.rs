//! Tiny self-contained SVG rendering of the Fig. 2 topology and routed
//! paths (no external dependencies).

use awb_net::{NodeId, Path, SinrModel};
use std::fmt::Write as _;

/// Colours per routing metric, in [`awb_routing::RoutingMetric::ALL`] order.
const PATH_COLOURS: [&str; 3] = ["#d62728", "#1f77b4", "#2ca02c"];

/// Renders the topology with one polyline per (metric, flow) path, in the
/// spirit of the paper's Fig. 2 (solid arrows = average-e2eD, dotted =
/// e2eTD). Returns the SVG document as a string.
pub fn render_fig2(
    model: &SinrModel,
    pairs: &[(NodeId, NodeId)],
    paths: &[(usize, usize, Path)],
) -> String {
    let t = model.topology();
    let scale = 1.2;
    let margin = 30.0;
    let (mut max_x, mut max_y) = (0.0f64, 0.0f64);
    for n in t.nodes() {
        max_x = max_x.max(n.position().x);
        max_y = max_y.max(n.position().y);
    }
    let width = max_x * scale + 2.0 * margin;
    let height = max_y * scale + 2.0 * margin;
    let px = |x: f64| x * scale + margin;
    let py = |y: f64| y * scale + margin;

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"#
    );
    let _ = writeln!(s, r#"<rect width="100%" height="100%" fill="white"/>"#);

    // Faint connectivity (one line per undirected pair).
    for link in t.links() {
        if link.tx() < link.rx() {
            let a = t.node(link.tx()).expect("own node").position();
            let b = t.node(link.rx()).expect("own node").position();
            let _ = writeln!(
                s,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#dddddd" stroke-width="0.6"/>"##,
                px(a.x),
                py(a.y),
                px(b.x),
                py(b.y)
            );
        }
    }

    // Paths: one polyline per (metric, flow).
    for &(metric_idx, _flow, ref path) in paths {
        let colour = PATH_COLOURS[metric_idx % PATH_COLOURS.len()];
        let dash = match metric_idx {
            0 => r#" stroke-dasharray="2,3""#,
            1 => r#" stroke-dasharray="6,3""#,
            _ => "",
        };
        let pts: Vec<String> = path
            .nodes(t)
            .expect("paths belong to this topology")
            .into_iter()
            .map(|n| {
                let p = t.node(n).expect("own node").position();
                format!("{:.1},{:.1}", px(p.x), py(p.y))
            })
            .collect();
        let _ = writeln!(
            s,
            r#"<polyline points="{}" fill="none" stroke="{colour}" stroke-width="2"{dash} opacity="0.8"/>"#,
            pts.join(" ")
        );
    }

    // Nodes on top, endpoints emphasized.
    let endpoints: Vec<usize> = pairs
        .iter()
        .flat_map(|&(a, b)| [a.index(), b.index()])
        .collect();
    for n in t.nodes() {
        let p = n.position();
        let is_endpoint = endpoints.contains(&n.id().index());
        let (radius, fill) = if is_endpoint {
            (5.0, "#222222")
        } else {
            (3.0, "#888888")
        };
        let _ = writeln!(
            s,
            r#"<circle cx="{:.1}" cy="{:.1}" r="{radius}" fill="{fill}"/>"#,
            px(p.x),
            py(p.y)
        );
        let _ = writeln!(
            s,
            r##"<text x="{:.1}" y="{:.1}" font-size="9" fill="#444444">n{}</text>"##,
            px(p.x) + 6.0,
            py(p.y) - 4.0,
            n.id().index()
        );
    }

    // Legend.
    for (i, label) in ["hop count", "e2eTD", "average-e2eD"].iter().enumerate() {
        let y = 16.0 + 14.0 * i as f64;
        let _ = writeln!(
            s,
            r#"<line x1="8" y1="{y:.1}" x2="36" y2="{y:.1}" stroke="{}" stroke-width="2"/>"#,
            PATH_COLOURS[i]
        );
        let _ = writeln!(
            s,
            r##"<text x="42" y="{:.1}" font-size="11" fill="#222222">{label}</text>"##,
            y + 4.0
        );
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_workloads::{connected_pairs, RandomTopology, RandomTopologyConfig};

    #[test]
    fn svg_is_well_formed_and_mentions_every_node() {
        let rt = RandomTopology::generate(RandomTopologyConfig {
            num_nodes: 6,
            ..RandomTopologyConfig::default()
        });
        let pairs = connected_pairs(rt.model(), 1, 1..=4, 3);
        let svg = render_fig2(rt.model(), &pairs, &[]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        for i in 0..6 {
            assert!(svg.contains(&format!(">n{i}<")), "missing node label n{i}");
        }
        assert!(svg.contains("average-e2eD"));
    }
}
