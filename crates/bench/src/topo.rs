//! Seeded benchmark topologies for the enumeration engines.

use awb_net::{DeclarativeModel, LinkId, Topology};
use awb_phy::Rate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded random declarative model over `n` disjoint links for the
/// enumeration benchmarks: every link gets the 54/36/18 Mbps ladder, and each
/// unordered pair independently draws "no conflict", "conflict at every
/// rate", or "conflict only at the 54–54 rate pair" — the last being the
/// rate-coupled case that forces the search to branch over rates.
///
/// Conflict density is tuned so that mid-size universes (8–14 links) still
/// have large admissible sets (expensive for the generic enumerate-then-
/// filter maximality pipeline) without the pool degenerating to singletons.
pub fn random_declarative(n: usize, seed: u64) -> (DeclarativeModel, Vec<LinkId>) {
    let r54 = Rate::from_mbps(54.0);
    let r36 = Rate::from_mbps(36.0);
    let r18 = Rate::from_mbps(18.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        let a = t.add_node(i as f64 * 10.0, 0.0);
        let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
        links.push(t.add_link(a, b).expect("fresh nodes"));
    }
    let mut b = DeclarativeModel::builder(t);
    for &l in &links {
        b = b.alone_rates(l, &[r54, r36, r18]);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            match rng.gen_range(0u8..4) {
                0 => b = b.conflict_all(links[i], links[j]),
                1 => b = b.conflict_at(links[i], r54, links[j], r54),
                _ => {}
            }
        }
    }
    (b.build(), links)
}

/// A more rate-coupled variant of [`random_declarative`] for the
/// column-generation benchmark: each unordered pair draws "conflict at all
/// rates" with probability 1/6 and "conflict whenever either side transmits
/// above 36 Mbps" (the 54–54, 54–36 and 36–54 pairs) with probability 1/3.
/// The partial conflicts multiply the number of *rated* maximal sets — the
/// full-enumeration LP's column count — while leaving the link count, which
/// is what column generation scales with, unchanged.
pub fn random_rate_coupled(n: usize, seed: u64) -> (DeclarativeModel, Vec<LinkId>) {
    let r54 = Rate::from_mbps(54.0);
    let r36 = Rate::from_mbps(36.0);
    let r18 = Rate::from_mbps(18.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        let a = t.add_node(i as f64 * 10.0, 0.0);
        let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
        links.push(t.add_link(a, b).expect("fresh nodes"));
    }
    let mut b = DeclarativeModel::builder(t);
    for &l in &links {
        b = b.alone_rates(l, &[r54, r36, r18]);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            match rng.gen_range(0u8..6) {
                0 => b = b.conflict_all(links[i], links[j]),
                1 | 2 => {
                    b = b.conflict_at(links[i], r54, links[j], r54);
                    b = b.conflict_at(links[i], r54, links[j], r36);
                    b = b.conflict_at(links[i], r36, links[j], r54);
                }
                _ => {}
            }
        }
    }
    (b.build(), links)
}

/// A clustered variant of [`random_rate_coupled`] for the solver-frontier
/// benchmark: `n` links split into clusters of at most `cluster` links, with
/// the rate-coupled conflict draw applied *within* clusters only and no
/// conflicts across them. Under `decompose: true` each cluster becomes one
/// potential-conflict component, so the instance exercises exactly the
/// per-component machinery (independent pricing oracles, parallel pricing,
/// parallel schedule merge) that lets column generation scale past the
/// single-component frontier.
pub fn clustered_rate_coupled(
    n: usize,
    cluster: usize,
    seed: u64,
) -> (DeclarativeModel, Vec<LinkId>) {
    let cluster = cluster.max(1);
    let r54 = Rate::from_mbps(54.0);
    let r36 = Rate::from_mbps(36.0);
    let r18 = Rate::from_mbps(18.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        let a = t.add_node(i as f64 * 10.0, 0.0);
        let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
        links.push(t.add_link(a, b).expect("fresh nodes"));
    }
    let mut b = DeclarativeModel::builder(t);
    for &l in &links {
        b = b.alone_rates(l, &[r54, r36, r18]);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if i / cluster != j / cluster {
                continue;
            }
            match rng.gen_range(0u8..6) {
                0 => b = b.conflict_all(links[i], links[j]),
                1 | 2 => {
                    b = b.conflict_at(links[i], r54, links[j], r54);
                    b = b.conflict_at(links[i], r54, links[j], r36);
                    b = b.conflict_at(links[i], r36, links[j], r54);
                }
                _ => {}
            }
        }
    }
    (b.build(), links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::LinkRateModel;

    #[test]
    fn clustered_generator_is_deterministic_and_cluster_local() {
        let (m1, links1) = clustered_rate_coupled(12, 4, 7);
        let (m2, links2) = clustered_rate_coupled(12, 4, 7);
        assert_eq!(links1, links2);
        // No conflicts across cluster boundaries, at any rate pair.
        for (i, &a) in links1.iter().enumerate() {
            for (j, &b) in links1.iter().enumerate().skip(i + 1) {
                if i / 4 == j / 4 {
                    continue;
                }
                for &ra in &m1.alone_rates(a) {
                    for &rb in &m1.alone_rates(b) {
                        assert!(!m1.conflicts((a, ra), (b, rb)), "{a} vs {b}");
                    }
                }
            }
        }
        // Same seed, same conflicts.
        let r54 = Rate::from_mbps(54.0);
        for (i, &a) in links1.iter().enumerate() {
            for &b in &links1[i + 1..] {
                assert_eq!(
                    m1.conflicts((a, r54), (b, r54)),
                    m2.conflicts((a, r54), (b, r54))
                );
            }
        }
    }

    #[test]
    fn generator_is_deterministic_and_live() {
        let (m1, links1) = random_declarative(8, 42);
        let (m2, links2) = random_declarative(8, 42);
        assert_eq!(links1, links2);
        for &l in &links1 {
            assert_eq!(m1.alone_rates(l), m2.alone_rates(l));
            assert_eq!(m1.alone_rates(l).len(), 3);
        }
        let (m3, _) = random_declarative(8, 43);
        // Different seeds disagree on at least one pair's conflict relation.
        let r54 = Rate::from_mbps(54.0);
        let differs = links1.iter().enumerate().any(|(i, &a)| {
            links1[i + 1..]
                .iter()
                .any(|&b| m1.conflicts((a, r54), (b, r54)) != m3.conflicts((a, r54), (b, r54)))
        });
        assert!(differs);
    }
}
