//! Minimal fixed-width table printing for the figure binaries.

/// Prints a header row followed by aligned data rows. Column widths adapt to
/// the widest cell.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate().take(cols) {
            out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats an f64 with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}
