//! `mobility_bench` — incremental recompilation vs from-scratch compiles
//! across random-waypoint mobility traces, written to `BENCH_mobility.json`
//! at the repo root.
//!
//! Each scale (30 / 100 / 300 nodes, field area ~40,000 m² per node, 10%
//! of nodes mobile) pre-generates a waypoint trace of topology snapshots
//! plus the exact [`TopologyDelta`] between consecutive epochs, then walks
//! the trace twice:
//!
//! * **incremental** — one [`CompiledInstance`] chained through
//!   [`CompiledInstance::apply_delta`], recompiling only the conflict
//!   components the epoch's movers touched;
//! * **from-scratch** — a fresh [`CompiledInstance::compile`] of the same
//!   link universe per epoch.
//!
//! The two instances are asserted identical per epoch (equal per-unit
//! content hashes — deterministic compilation makes hash equality byte
//! equality), and an epoch-driven re-admission run ([`EpochRunner`], warm
//! session migrated by the same deltas) is asserted flow-for-flow
//! bit-identical to cold per-epoch admission before any timing is trusted.
//!
//! `--smoke` runs the 30-node scale with a loose speedup floor and writes
//! nothing — the CI hook keeping the incremental path honest.

#![forbid(unsafe_code)]

use awb_core::{
    AvailableBandwidthOptions, CompiledInstance, DeltaReuse, SolverKind, UnitCache,
    DEFAULT_RETENTION_EPOCHS,
};
use awb_net::{LinkId, SinrModel, TopologyDelta};
use awb_net::{LinkRateModel, NodeId};
use awb_routing::{
    admit_sequentially_with_policy, AdmissionConfig, EpochRunner, FlowOutcome, RoutePolicy,
    RoutingMetric,
};
use awb_workloads::mobility::{WaypointConfig, WaypointMobility};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 42;
/// Field area per node: keeps mean conflict-graph degree (and therefore
/// component size) constant across scales. Sensor densities this sparse
/// keep conflict components local (a few links each) — the regime where
/// per-component reuse pays; denser fields percolate into one giant
/// conflict component that any mover dirties.
const AREA_PER_NODE_M2: f64 = 150_000.0;
/// Fraction of nodes performing waypoint motion (the ISSUE's bar is
/// "≤ 10% of nodes move").
const MOBILE_FRACTION: f64 = 0.05;

/// One trace configuration.
struct ScaleConfig {
    num_nodes: usize,
    epochs: usize,
    /// Sink-tree flows attempted per epoch.
    flows: usize,
}

const SCALES: [ScaleConfig; 3] = [
    ScaleConfig {
        num_nodes: 30,
        epochs: 8,
        flows: 4,
    },
    ScaleConfig {
        num_nodes: 100,
        epochs: 8,
        flows: 8,
    },
    ScaleConfig {
        num_nodes: 300,
        epochs: 8,
        flows: 12,
    },
];
const SMOKE: ScaleConfig = ScaleConfig {
    num_nodes: 30,
    epochs: 4,
    flows: 4,
};

#[derive(Serialize)]
struct SessionCounters {
    compiles: usize,
    warm_queries: usize,
    delta_applications: usize,
    units_reused: usize,
    unit_cache_hits: usize,
    units_compiled: usize,
}

#[derive(Serialize)]
struct ScaleResult {
    num_nodes: usize,
    mobile_nodes: usize,
    epochs: usize,
    universe_links: usize,
    components: usize,
    /// Aggregate reuse over all epoch transitions of the full-universe
    /// instance chain.
    dirty_links: usize,
    units_reused: usize,
    unit_cache_hits: usize,
    units_compiled: usize,
    full_recompiles: usize,
    /// Total wall time of the instance chain over all epoch transitions.
    incremental_ns: u64,
    scratch_ns: u64,
    /// scratch_ns / incremental_ns.
    speedup: f64,
    /// Re-admission quality (sink-tree demand matrix per epoch).
    flows_attempted: usize,
    flows_admitted: usize,
    session: SessionCounters,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    command: &'static str,
    seed: u64,
    area_per_node_m2: f64,
    mobile_fraction: f64,
    results: Vec<ScaleResult>,
}

fn options() -> AvailableBandwidthOptions {
    AvailableBandwidthOptions {
        solver: SolverKind::ColumnGeneration,
        decompose: true,
        ..AvailableBandwidthOptions::default()
    }
}

/// Pre-generates the trace: one snapshot per epoch plus the delta between
/// consecutive snapshots (exact for geometric models).
fn trace(config: &ScaleConfig) -> (Vec<SinrModel>, Vec<TopologyDelta>, usize) {
    let side = (config.num_nodes as f64 * AREA_PER_NODE_M2).sqrt();
    let waypoint = WaypointConfig {
        width: side,
        height: side,
        num_nodes: config.num_nodes,
        mobile_fraction: MOBILE_FRACTION,
        speed_min: 1.0,
        speed_max: 5.0,
        epoch_seconds: 10.0,
        seed: SEED,
    };
    let mut mobility = WaypointMobility::new(waypoint);
    let mobile = mobility.mobile_nodes().len();
    let mut models = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        if epoch > 0 {
            mobility.advance();
        }
        models.push(mobility.snapshot());
    }
    let deltas = models
        .windows(2)
        .map(|w| TopologyDelta::between(&w[0], &w[1]))
        .collect();
    (models, deltas, mobile)
}

/// Draws up to `flows` demand pairs as endpoints of distinct live links —
/// 1-hop routable by construction, so the admission experiment measures
/// capacity and interference rather than the (sparse) field's
/// connectivity. Contention is real: several flows landing in one conflict
/// component compete for its airtime.
fn link_demands<M: LinkRateModel>(model: &M, flows: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut alive: Vec<(NodeId, NodeId)> = model
        .topology()
        .links()
        .filter(|l| !model.alone_rates(l.id()).is_empty())
        .map(|l| (l.tx(), l.rx()))
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let take = flows.min(alive.len());
    // Partial Fisher-Yates: the first `take` slots are a uniform sample
    // without replacement.
    for i in 0..take {
        let j = rng.gen_range(i..alive.len());
        alive.swap(i, j);
    }
    alive.truncate(take);
    alive
}

/// Asserts two compiled instances are the same artifact: equal component
/// partitions and pairwise-equal unit content hashes (hash equality is byte
/// equality under deterministic compilation).
fn assert_identical(incremental: &CompiledInstance, scratch: &CompiledInstance, epoch: usize) {
    assert_eq!(
        incremental.components(),
        scratch.components(),
        "epoch {epoch}: component partitions diverge"
    );
    for (i, (a, b)) in incremental.units().iter().zip(scratch.units()).enumerate() {
        assert_eq!(
            a.content_hash(),
            b.content_hash(),
            "epoch {epoch}: unit {i} diverges from the fresh compile"
        );
    }
    assert_eq!(incremental.num_columns(), scratch.num_columns());
}

/// Asserts the warm (epoch-threaded session) and cold admission outcomes
/// agree flow-for-flow, bandwidth bits included.
fn assert_flows_identical(warm: &[FlowOutcome], cold: &[FlowOutcome], epoch: usize) {
    assert_eq!(warm.len(), cold.len(), "epoch {epoch}: flow counts diverge");
    for (w, c) in warm.iter().zip(cold) {
        assert_eq!(
            w.admitted, c.admitted,
            "epoch {epoch} flow {}: admission diverges",
            w.index
        );
        assert_eq!(
            w.available_mbps.to_bits(),
            c.available_mbps.to_bits(),
            "epoch {epoch} flow {}: available bandwidth diverges ({} vs {})",
            w.index,
            w.available_mbps,
            c.available_mbps
        );
    }
}

fn run_scale(config: &ScaleConfig) -> ScaleResult {
    let (models, deltas, mobile_nodes) = trace(config);
    let options = options();
    // The instance universe is fixed at epoch 0's link table; links that
    // appear later stay outside it, links that drift out of range stay in
    // it as dead (empty-rate) members — ids never renumber.
    let universe: Vec<LinkId> = (0..models[0].topology().num_links())
        .map(LinkId::from_index)
        .collect();

    // Recompile-latency walk: chained apply_delta vs per-epoch compile.
    let mut instance =
        CompiledInstance::compile(&models[0], &universe, &options).expect("epoch 0 compiles");
    let components = instance.components().len();
    let mut cache = UnitCache::new(DEFAULT_RETENTION_EPOCHS);
    let mut reuse_total = DeltaReuse::default();
    let mut incremental_ns = 0u64;
    let mut scratch_ns = 0u64;
    for (epoch, delta) in deltas.iter().enumerate() {
        let model = &models[epoch + 1];
        let t = Instant::now();
        let (next, reuse) = instance
            .apply_delta(model, delta, &mut cache)
            .expect("mobility never removes universe links");
        cache.end_epoch();
        incremental_ns += t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let scratch = CompiledInstance::compile(model, &universe, &options).expect("fresh compile");
        scratch_ns += t.elapsed().as_nanos() as u64;
        assert_identical(&next, &scratch, epoch + 1);
        reuse_total.absorb(reuse);
        instance = next;
    }

    // Re-admission walk: warm epoch-threaded session vs cold per-epoch
    // admission over the same sink-tree demand matrices.
    let admission = AdmissionConfig {
        demand_mbps: 2.0,
        stop_on_first_failure: false,
        available_options: options,
    };
    let policy = RoutePolicy::Additive(RoutingMetric::E2eTransmissionDelay);
    let mut runner = EpochRunner::new(&models[0], policy, admission);
    let mut flows_attempted = 0;
    let mut flows_admitted = 0;
    for (epoch, model) in models.iter().enumerate() {
        let pairs = link_demands(model, config.flows, SEED ^ epoch as u64);
        let delta = (epoch > 0).then(|| &deltas[epoch - 1]);
        let warm = runner
            .run_epoch(model, delta, &pairs)
            .expect("admission solves");
        let cold = admit_sequentially_with_policy(model, &pairs, policy, &admission)
            .expect("admission solves");
        assert_flows_identical(&warm.outcomes, &cold, epoch);
        flows_attempted += warm.attempted;
        flows_admitted += warm.admitted;
    }
    let stats = runner.stats();

    ScaleResult {
        num_nodes: config.num_nodes,
        mobile_nodes,
        epochs: config.epochs,
        universe_links: universe.len(),
        components,
        dirty_links: reuse_total.dirty_links,
        units_reused: reuse_total.units_reused,
        unit_cache_hits: reuse_total.unit_cache_hits,
        units_compiled: reuse_total.units_compiled,
        full_recompiles: reuse_total.full_recompiles,
        incremental_ns,
        scratch_ns,
        speedup: scratch_ns as f64 / incremental_ns.max(1) as f64,
        flows_attempted,
        flows_admitted,
        session: SessionCounters {
            compiles: stats.compiles,
            warm_queries: stats.warm_queries,
            delta_applications: stats.delta_applications,
            units_reused: stats.delta_reuse.units_reused,
            unit_cache_hits: stats.delta_reuse.unit_cache_hits,
            units_compiled: stats.delta_reuse.units_compiled,
        },
    }
}

fn print_result(r: &ScaleResult) {
    println!(
        "{:>3} nodes ({:>2} mobile), {:>4} links / {:>3} components: \
         incremental {:>11} ns, scratch {:>11} ns ({:.1}x); \
         reuse {}+{} cached of {} units; admitted {}/{}",
        r.num_nodes,
        r.mobile_nodes,
        r.universe_links,
        r.components,
        r.incremental_ns,
        r.scratch_ns,
        r.speedup,
        r.units_reused,
        r.unit_cache_hits,
        r.units_reused + r.unit_cache_hits + r.units_compiled,
        r.flows_admitted,
        r.flows_attempted,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        let result = run_scale(&SMOKE);
        print_result(&result);
        assert!(
            result.speedup > 1.0,
            "incremental recompilation is not ahead of from-scratch: {:.2}x",
            result.speedup
        );
        println!(
            "mobility_bench smoke ok: answers bit-identical, incremental {:.1}x from-scratch",
            result.speedup
        );
        return;
    }

    let results: Vec<ScaleResult> = SCALES.iter().map(run_scale).collect();
    for r in &results {
        print_result(r);
    }
    // The ISSUE's acceptance bar: ≥ 5x on the 300-node trace with ≤ 10%
    // of nodes mobile.
    let main = results.last().expect("300-node scale ran");
    assert!(
        main.mobile_nodes * 10 <= main.num_nodes,
        "mobility exceeded the 10% bar: {}/{}",
        main.mobile_nodes,
        main.num_nodes
    );
    assert!(
        main.speedup >= 5.0,
        "incremental speedup at {} nodes is only {:.1}x",
        main.num_nodes,
        main.speedup
    );
    let report = Report {
        bench: "mobility-incremental-vs-scratch",
        command: "cargo run --release -p awb-bench --bin mobility_bench",
        seed: SEED,
        area_per_node_m2: AREA_PER_NODE_M2,
        mobile_fraction: MOBILE_FRACTION,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_mobility.json", json + "\n").expect("write BENCH_mobility.json");
    println!("wrote BENCH_mobility.json");
}
