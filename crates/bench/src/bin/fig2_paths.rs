//! E3 — regenerates Fig. 2: the node placement of the random topology and
//! the paths each routing metric finds for the eight flows. Pass `--json`
//! for machine-readable output, `--svg` for an SVG rendering.

#![forbid(unsafe_code)]

use awb_bench::experiments::{fig2_paths, paper_random_instance};

fn main() {
    if std::env::args().any(|a| a == "--svg") {
        let (model, pairs, routed) = awb_bench::experiments::fig2_routed_paths();
        print!("{}", awb_bench::svg::render_fig2(&model, &pairs, &routed));
        return;
    }
    let paths = fig2_paths();
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&paths).expect("paths serialize")
        );
        return;
    }
    let (model, pairs) = paper_random_instance();
    let t = model.topology();
    println!("Fig. 2: 30 nodes in 400 m × 600 m (seed-reproducible placement)\n");
    println!("node  x (m)    y (m)");
    for n in t.nodes() {
        println!(
            "{:>4}  {:>7.1}  {:>7.1}",
            n.id().index(),
            n.position().x,
            n.position().y
        );
    }
    println!("\nflow endpoints (src -> dst):");
    for (i, (s, d)) in pairs.iter().enumerate() {
        println!("  flow {}: n{} -> n{}", i + 1, s.index(), d.index());
    }
    println!("\npaths per routing metric (node sequences; '-' = unroutable):");
    for p in &paths {
        let nodes = if p.nodes.is_empty() {
            "-".to_string()
        } else {
            p.nodes
                .iter()
                .map(|n| format!("n{n}"))
                .collect::<Vec<_>>()
                .join(" -> ")
        };
        println!("  [{}] flow {}: {}", p.metric, p.flow, nodes);
    }
}
