//! `estimators_bench` — the estimator campaign at scale, written to
//! `BENCH_estimators.json` at the repo root.
//!
//! Three questions, one artifact:
//!
//! 1. **Kernel ablation** — on the paper's 30-node instance with saturated
//!    flows, the compiled slot kernels ([`SimEngine::Compiled`]) must
//!    produce a **bit-identical** report to the generic engine and run at
//!    least 5× faster per slot. Both facts are asserted, then recorded.
//! 2. **Error surface** — a deterministic scenario matrix
//!    (density × contention × seed, up to 300 nodes) runs the paper's §5.2
//!    experiment in each cell: flows arrive one by one, each routed on the
//!    channel idleness *measured by simulating the already-admitted flows*,
//!    its true available bandwidth computed via Eq. 6 (column-generation
//!    [`Session`]), and the five §4 estimators evaluated on the same
//!    measured idleness. Per-cell mean errors and campaign-wide error
//!    quantiles land in the report.
//! 3. **Deterministic parallelism** — the whole cell list is re-run under
//!    `awb_sim::campaign::fan_out` with several worker counts; the merged
//!    results must serialize to the **same bytes** as the sequential run
//!    (asserted, then recorded together with the parallel speedup).
//!
//! A final *scale* section pushes the compiled engine to 300/1000/3000
//! nodes at constant node density; rows whose projected SINR-table memory
//! exceeds the budget are skipped with the projection recorded, not
//! silently dropped.
//!
//! `--smoke` runs a reduced ablation + a two-cell matrix with the same
//! assertions and writes nothing — the CI hook keeping the compiled
//! kernels honest.

#![forbid(unsafe_code)]

use awb_bench::rows::{EstimatorError, Fig4Row};
use awb_core::{AvailableBandwidthOptions, Flow, Schedule, Session, SolverKind};
use awb_estimate::{Estimator, Hop, IdleMap};
use awb_net::{NodeId, Path, SinrModel, TopologyDelta};
use awb_phy::Phy;
use awb_routing::{shortest_path, RoutingMetric};
use awb_sim::{campaign, Contention, RatePolicy, SimConfig, SimEngine, Simulator};
use awb_workloads::mobility::{WaypointConfig, WaypointMobility};
use awb_workloads::{
    shortest_hop_distance, ContentionSpec, DensityPoint, RandomTopology, RateMix, ScenarioCell,
    ScenarioMatrix, TrafficSpec,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// Slots per campaign-cell simulation.
const CELL_SLOTS: u64 = 6_000;
const CELL_SLOTS_SMOKE: u64 = 1_200;
/// Slots for the 30-node kernel ablation.
const ABLATION_SLOTS: u64 = 40_000;
const ABLATION_SLOTS_SMOKE: u64 = 40_000;
/// Timing iterations (minimum taken).
const ITERS: usize = 3;
/// The ablation gate: compiled must be at least this many times faster.
const SPEEDUP_FLOOR: f64 = 5.0;
/// Scale rows are skipped when the projected SINR power table exceeds this.
const SCALE_MEMORY_BUDGET_BYTES: u64 = 1_500_000_000;
/// Worker counts exercised by the parallel section.
const THREAD_COUNTS: [usize; 3] = [2, 4, 0];

#[derive(Serialize)]
struct AblationResult {
    num_nodes: usize,
    num_links: usize,
    flows: usize,
    slots: u64,
    /// Whole-run wall time, min over iterations.
    generic_ns: u64,
    compiled_ns: u64,
    per_slot_generic_ns: f64,
    per_slot_compiled_ns: f64,
    /// generic_ns / compiled_ns; gated at [`SPEEDUP_FLOOR`].
    speedup: f64,
    /// Whether the two engines' reports are `==` (gated: must be true).
    bit_identical: bool,
}

#[derive(Clone, Serialize)]
struct CellResult {
    index: usize,
    num_nodes: usize,
    num_links: usize,
    contention: String,
    rate_mix: String,
    seed: u64,
    flows_routed: usize,
    flows_admitted: usize,
    wall_ns: u64,
    rows: Vec<Fig4Row>,
    errors: Vec<EstimatorError>,
}

/// Campaign-wide |error| quantiles for one estimator, across every flow row
/// of every cell.
#[derive(Serialize)]
struct ErrorQuantiles {
    estimator: String,
    samples: usize,
    mean_abs_mbps: f64,
    p50_abs_mbps: f64,
    p90_abs_mbps: f64,
    max_abs_mbps: f64,
}

#[derive(Serialize)]
struct ParallelRow {
    threads_requested: usize,
    threads_used: usize,
    wall_ns: u64,
    /// wall of the sequential run / this wall.
    speedup_vs_sequential: f64,
    /// Whether this run's serialized cells byte-match the sequential run's
    /// (gated: must be true).
    bit_identical: bool,
    /// FNV-1a of the serialized cells, for eyeballing across runs.
    results_hash: String,
}

#[derive(Serialize)]
struct ScaleRow {
    num_nodes: usize,
    field_w: f64,
    field_h: f64,
    /// Links projected from the density before building anything.
    projected_links: u64,
    projected_table_bytes: u64,
    skipped: bool,
    skip_reason: Option<String>,
    num_links: Option<usize>,
    flows: Option<usize>,
    slots: Option<u64>,
    build_ns: Option<u64>,
    sim_ns: Option<u64>,
    per_slot_ns: Option<f64>,
}

/// One epoch of the mobility error surface: estimator errors against the
/// Eq. 6 truth on a waypoint-trace snapshot, truth computed through a warm
/// [`Session`] migrated by [`Session::apply_delta`].
#[derive(Serialize)]
struct MobilityRow {
    epoch: usize,
    num_links: usize,
    flows: usize,
    /// Conflict components the epoch's delta reused / recompiled in the
    /// session's cached instances.
    units_reused: usize,
    units_compiled: usize,
    errors: Vec<EstimatorError>,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    command: &'static str,
    cell_slots: u64,
    ablation: AblationResult,
    cells: Vec<CellResult>,
    error_quantiles: Vec<ErrorQuantiles>,
    parallel: Vec<ParallelRow>,
    scale: Vec<ScaleRow>,
    mobility: Vec<MobilityRow>,
}

/// Draws up to `count` distinct connected pairs with BFS hop distance in
/// `[min_hops, max_hops]`, returning however many a bounded number of draws
/// finds (unlike `awb_workloads::connected_pairs`, which panics — a sparse
/// high-density draw must degrade to fewer flows, not kill the campaign).
fn draw_pairs(
    model: &SinrModel,
    count: usize,
    min_hops: usize,
    max_hops: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let t = model.topology();
    let nodes: Vec<NodeId> = t.nodes().map(|n| n.id()).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out: Vec<(NodeId, NodeId)> = Vec::with_capacity(count);
    for _ in 0..10_000 {
        if out.len() == count {
            break;
        }
        let src = nodes[rng.gen_range(0..nodes.len())];
        let dst = nodes[rng.gen_range(0..nodes.len())];
        if src == dst || out.contains(&(src, dst)) {
            continue;
        }
        if shortest_hop_distance(t, src, dst).is_some_and(|d| d >= min_hops && d <= max_hops) {
            out.push((src, dst));
        }
    }
    out
}

fn to_contention(spec: ContentionSpec) -> Contention {
    match spec {
        ContentionSpec::OrderedCsma => Contention::OrderedCsma,
        ContentionSpec::PPersistent(p) => Contention::PPersistent(p),
        ContentionSpec::Dcf { cw_min, cw_max } => Contention::Dcf { cw_min, cw_max },
    }
}

fn to_rate_policy(mix: RateMix) -> RatePolicy {
    match mix {
        RateMix::AloneMax => RatePolicy::AloneMax,
        RateMix::Lowest => RatePolicy::Lowest,
    }
}

/// Ground-truth solver options: column generation (full enumeration would
/// blow up on the larger cells' link universes).
fn truth_options() -> AvailableBandwidthOptions {
    AvailableBandwidthOptions {
        solver: SolverKind::ColumnGeneration,
        ..AvailableBandwidthOptions::default()
    }
}

/// Simulates `admitted` under the cell's MAC and returns the measured
/// per-node idleness.
fn measured_idle(model: &SinrModel, admitted: &[Flow], cell: &ScenarioCell, slots: u64) -> IdleMap {
    let mut sim = Simulator::new(
        model,
        SimConfig {
            slots,
            contention: to_contention(cell.contention),
            rate_policy: to_rate_policy(cell.rate_mix),
            seed: cell.seed,
            ..SimConfig::default()
        },
    );
    for f in admitted {
        sim.add_flow(f.path().clone(), Some(f.demand_mbps()));
    }
    IdleMap::from_ratios(sim.run(model).node_idle_ratio)
}

/// One campaign cell: the §5.2 arrival loop with simulated idleness.
fn run_cell(cell: &ScenarioCell, slots: u64) -> CellResult {
    let start = Instant::now();
    let topo = RandomTopology::generate_with_phy(
        cell.density.topology_config(cell.seed),
        Phy::paper_default(),
    );
    let model = topo.into_model();
    let pairs = draw_pairs(
        &model,
        cell.traffic.num_flows,
        cell.traffic.min_hops,
        cell.traffic.max_hops,
        // Decorrelate pair choice from node placement.
        cell.seed.wrapping_mul(0x9e37_79b9).wrapping_add(5),
    );
    let mut session = Session::new(&model, truth_options());
    let mut admitted: Vec<Flow> = Vec::new();
    let mut rows: Vec<Fig4Row> = Vec::new();
    for (index, &(src, dst)) in pairs.iter().enumerate() {
        // The distributed view: idleness as the MAC actually measures it
        // with the current background running.
        let idle = measured_idle(&model, &admitted, cell, slots);
        let Some(path) = shortest_path(&model, &idle, RoutingMetric::AverageE2eDelay, src, dst)
        else {
            continue;
        };
        let Ok(truth) = session.query(&admitted, &path) else {
            continue;
        };
        let truth = truth.bandwidth_mbps();
        let Some(hops) = Hop::for_path(&model, &idle, &path) else {
            continue;
        };
        let est = |e: Estimator| e.estimate(&model, &hops);
        rows.push(Fig4Row {
            flow: index + 1,
            truth_mbps: truth,
            clique_mbps: est(Estimator::CliqueConstraint),
            bottleneck_mbps: est(Estimator::BottleneckNode),
            min_both_mbps: est(Estimator::MinOfBoth),
            conservative_mbps: est(Estimator::ConservativeClique),
            expected_time_mbps: est(Estimator::ExpectedCliqueTime),
        });
        if let Some(demand) = cell.traffic.demand_mbps {
            if truth + 1e-9 >= demand {
                admitted.push(Flow::new(path, demand).expect("demand is valid"));
            }
        }
    }
    let errors = summarize_errors(&rows);
    CellResult {
        index: cell.index,
        num_nodes: cell.density.num_nodes,
        num_links: model.topology().num_links(),
        contention: cell.contention.label(),
        rate_mix: format!("{:?}", cell.rate_mix),
        seed: cell.seed,
        flows_routed: rows.len(),
        flows_admitted: admitted.len(),
        wall_ns: start.elapsed().as_nanos() as u64,
        rows,
        errors,
    }
}

fn estimate_of(row: &Fig4Row, e: Estimator) -> f64 {
    match e {
        Estimator::CliqueConstraint => row.clique_mbps,
        Estimator::BottleneckNode => row.bottleneck_mbps,
        Estimator::MinOfBoth => row.min_both_mbps,
        Estimator::ConservativeClique => row.conservative_mbps,
        Estimator::ExpectedCliqueTime => row.expected_time_mbps,
    }
}

fn summarize_errors(rows: &[Fig4Row]) -> Vec<EstimatorError> {
    let n = rows.len().max(1) as f64;
    Estimator::ALL
        .iter()
        .map(|&e| EstimatorError {
            estimator: e.label().to_string(),
            mean_abs_error_mbps: rows
                .iter()
                .map(|r| (estimate_of(r, e) - r.truth_mbps).abs())
                .sum::<f64>()
                / n,
            mean_signed_error_mbps: rows
                .iter()
                .map(|r| estimate_of(r, e) - r.truth_mbps)
                .sum::<f64>()
                / n,
        })
        .collect()
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn error_quantiles(cells: &[CellResult]) -> Vec<ErrorQuantiles> {
    Estimator::ALL
        .iter()
        .map(|&e| {
            let mut abs: Vec<f64> = cells
                .iter()
                .flat_map(|c| c.rows.iter())
                .map(|r| (estimate_of(r, e) - r.truth_mbps).abs())
                .collect();
            abs.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
            let n = abs.len();
            ErrorQuantiles {
                estimator: e.label().to_string(),
                samples: n,
                mean_abs_mbps: abs.iter().sum::<f64>() / n.max(1) as f64,
                p50_abs_mbps: quantile(&abs, 0.5),
                p90_abs_mbps: quantile(&abs, 0.9),
                max_abs_mbps: quantile(&abs, 1.0),
            }
        })
        .collect()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The 30-node saturated instance of the kernel ablation: the paper
/// topology with every §5.2 flow pushed to saturation, so per-slot
/// contention and capture — not idle queues — dominate both engines.
fn ablation_instance() -> (SinrModel, Vec<Path>) {
    let (model, pairs) = awb_bench::experiments::paper_random_instance();
    let idle = IdleMap::from_schedule(&model, &Schedule::empty());
    let paths = pairs
        .iter()
        .filter_map(|&(src, dst)| {
            shortest_path(&model, &idle, RoutingMetric::AverageE2eDelay, src, dst)
        })
        .collect();
    (model, paths)
}

fn run_ablation(slots: u64) -> AblationResult {
    let (model, paths) = ablation_instance();
    let run = |engine: SimEngine| {
        let mut sim = Simulator::new(
            &model,
            SimConfig {
                slots,
                engine,
                ..SimConfig::default()
            },
        );
        for p in &paths {
            sim.add_flow(p.clone(), None);
        }
        sim.run(&model)
    };
    let time = |engine: SimEngine| {
        (0..ITERS)
            .map(|_| {
                let t = Instant::now();
                let _ = run(engine);
                t.elapsed().as_nanos() as u64
            })
            .min()
            .expect("at least one iteration")
    };
    let bit_identical = run(SimEngine::Generic) == run(SimEngine::Compiled);
    let generic_ns = time(SimEngine::Generic);
    let compiled_ns = time(SimEngine::Compiled);
    AblationResult {
        num_nodes: model.topology().num_nodes(),
        num_links: model.topology().num_links(),
        flows: paths.len(),
        slots,
        generic_ns,
        compiled_ns,
        per_slot_generic_ns: generic_ns as f64 / slots as f64,
        per_slot_compiled_ns: compiled_ns as f64 / slots as f64,
        speedup: generic_ns as f64 / compiled_ns as f64,
        bit_identical,
    }
}

fn campaign_matrix(smoke: bool) -> ScenarioMatrix {
    if smoke {
        ScenarioMatrix {
            densities: vec![DensityPoint::paper_base()],
            rate_mixes: vec![RateMix::AloneMax],
            contentions: vec![
                ContentionSpec::OrderedCsma,
                ContentionSpec::Dcf {
                    cw_min: 16,
                    cw_max: 1024,
                },
            ],
            traffics: vec![TrafficSpec::paper_default()],
            seeds: vec![7],
        }
    } else {
        ScenarioMatrix {
            densities: vec![
                DensityPoint::paper_base(),
                DensityPoint::paper_density(120),
                DensityPoint::paper_density(300),
            ],
            rate_mixes: vec![RateMix::AloneMax],
            contentions: vec![
                ContentionSpec::OrderedCsma,
                ContentionSpec::PPersistent(0.5),
                ContentionSpec::Dcf {
                    cw_min: 16,
                    cw_max: 1024,
                },
            ],
            traffics: vec![TrafficSpec::paper_default()],
            seeds: vec![7, 11],
        }
    }
}

/// Runs the cell list under `threads` workers; returns (results, wall).
fn run_campaign(cells: &[ScenarioCell], threads: usize, slots: u64) -> (Vec<CellResult>, u64) {
    let t = Instant::now();
    let results = campaign::fan_out(cells.len(), threads, |i| run_cell(&cells[i], slots));
    (results, t.elapsed().as_nanos() as u64)
}

/// Serializes campaign results with the (run-dependent) wall times zeroed,
/// so equality means the *data* is bit-identical.
fn canonical_json(results: &[CellResult]) -> String {
    let scrubbed: Vec<CellResult> = results
        .iter()
        .map(|c| CellResult {
            wall_ns: 0,
            ..c.clone()
        })
        .collect();
    serde_json::to_string(&scrubbed).expect("cells serialize")
}

fn parallel_section(
    cells: &[ScenarioCell],
    sequential: &[CellResult],
    sequential_ns: u64,
    slots: u64,
) -> Vec<ParallelRow> {
    let canonical = canonical_json(sequential);
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let (results, wall_ns) = run_campaign(cells, threads, slots);
            let json = canonical_json(&results);
            let bit_identical = json == canonical;
            assert!(
                bit_identical,
                "parallel campaign diverged at {threads} threads"
            );
            ParallelRow {
                threads_requested: threads,
                threads_used: campaign::resolve_threads(threads).min(cells.len().max(1)),
                wall_ns,
                speedup_vs_sequential: sequential_ns as f64 / wall_ns as f64,
                bit_identical,
                results_hash: format!("{:016x}", fnv1a(json.as_bytes())),
            }
        })
        .collect()
}

/// Projects the SINR table footprint of an `n`-node row at paper density
/// before building it: expected directed links ≈ n·(n−1)·(πr²/area) and the
/// dominant allocation is the links² pairwise power table.
fn scale_projection(density: &DensityPoint, phy: &Phy) -> (u64, u64) {
    let r = phy.max_range();
    let area = density.width * density.height;
    let n = density.num_nodes as f64;
    let p_in_range = (std::f64::consts::PI * r * r / area).min(1.0);
    let links = (n * (n - 1.0) * p_in_range).ceil() as u64;
    (links, links * links * 8)
}

fn run_scale_row(num_nodes: usize, slots: u64) -> ScaleRow {
    let density = DensityPoint::paper_density(num_nodes);
    let phy = Phy::paper_default();
    let (projected_links, projected_table_bytes) = scale_projection(&density, &phy);
    let mut row = ScaleRow {
        num_nodes,
        field_w: density.width,
        field_h: density.height,
        projected_links,
        projected_table_bytes,
        skipped: false,
        skip_reason: None,
        num_links: None,
        flows: None,
        slots: None,
        build_ns: None,
        sim_ns: None,
        per_slot_ns: None,
    };
    if projected_table_bytes > SCALE_MEMORY_BUDGET_BYTES {
        row.skipped = true;
        row.skip_reason = Some(format!(
            "projected {projected_links}-link pairwise power table \
             ({projected_table_bytes} B) exceeds the {SCALE_MEMORY_BUDGET_BYTES} B budget"
        ));
        return row;
    }
    let build = Instant::now();
    let topo = RandomTopology::generate_with_phy(density.topology_config(7), phy);
    let model = topo.into_model();
    row.build_ns = Some(build.elapsed().as_nanos() as u64);
    row.num_links = Some(model.topology().num_links());
    // Saturated flows routed on a fully-idle map: pure MAC pressure.
    let idle = IdleMap::from_schedule(&model, &Schedule::empty());
    let pairs = draw_pairs(&model, 8, 2, 4, 5);
    let paths: Vec<Path> = pairs
        .iter()
        .filter_map(|&(src, dst)| {
            shortest_path(&model, &idle, RoutingMetric::AverageE2eDelay, src, dst)
        })
        .collect();
    row.flows = Some(paths.len());
    let mut sim = Simulator::new(
        &model,
        SimConfig {
            slots,
            ..SimConfig::default()
        },
    );
    for p in &paths {
        sim.add_flow(p.clone(), None);
    }
    let t = Instant::now();
    let _ = sim.run(&model);
    let sim_ns = t.elapsed().as_nanos() as u64;
    row.slots = Some(slots);
    row.sim_ns = Some(sim_ns);
    row.per_slot_ns = Some(sim_ns as f64 / slots as f64);
    row
}

/// The mobility error surface (the "remaining axis" of the campaign): a
/// short 30-node random-waypoint trace; per epoch the five §4 estimators
/// are evaluated against the Eq. 6 truth on freshly routed flows, with the
/// truth session migrated across epochs by [`Session::apply_delta`] instead
/// of recompiled.
fn mobility_section(epochs: usize) -> Vec<MobilityRow> {
    let config = WaypointConfig {
        num_nodes: 30,
        mobile_fraction: 0.1,
        seed: 7,
        ..WaypointConfig::default()
    };
    let mut trace = WaypointMobility::new(config);
    let mut models = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        if epoch > 0 {
            trace.advance();
        }
        models.push(trace.snapshot());
    }
    let deltas: Vec<TopologyDelta> = models
        .windows(2)
        .map(|w| TopologyDelta::between(&w[0], &w[1]))
        .collect();
    let options = AvailableBandwidthOptions {
        solver: SolverKind::ColumnGeneration,
        decompose: true,
        ..AvailableBandwidthOptions::default()
    };
    let mut session = Session::new(&models[0], options);
    let mut rows = Vec::with_capacity(epochs);
    for (epoch, model) in models.iter().enumerate() {
        let reuse = if epoch > 0 {
            session.apply_delta(model, &deltas[epoch - 1])
        } else {
            Default::default()
        };
        let idle = IdleMap::from_schedule(model, &Schedule::empty());
        let pairs = draw_pairs(model, 4, 2, 4, 7 ^ epoch as u64);
        let mut flow_rows: Vec<Fig4Row> = Vec::new();
        for (index, &(src, dst)) in pairs.iter().enumerate() {
            let Some(path) = shortest_path(model, &idle, RoutingMetric::AverageE2eDelay, src, dst)
            else {
                continue;
            };
            let Ok(truth) = session.query(&[], &path) else {
                continue;
            };
            let Some(hops) = Hop::for_path(model, &idle, &path) else {
                continue;
            };
            let est = |e: Estimator| e.estimate(model, &hops);
            flow_rows.push(Fig4Row {
                flow: index + 1,
                truth_mbps: truth.bandwidth_mbps(),
                clique_mbps: est(Estimator::CliqueConstraint),
                bottleneck_mbps: est(Estimator::BottleneckNode),
                min_both_mbps: est(Estimator::MinOfBoth),
                conservative_mbps: est(Estimator::ConservativeClique),
                expected_time_mbps: est(Estimator::ExpectedCliqueTime),
            });
        }
        rows.push(MobilityRow {
            epoch,
            num_links: model.topology().num_links(),
            flows: flow_rows.len(),
            units_reused: reuse.units_reused,
            units_compiled: reuse.units_compiled,
            errors: summarize_errors(&flow_rows),
        });
    }
    rows
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (ablation_slots, cell_slots) = if smoke {
        (ABLATION_SLOTS_SMOKE, CELL_SLOTS_SMOKE)
    } else {
        (ABLATION_SLOTS, CELL_SLOTS)
    };

    println!("== kernel ablation (30-node saturated instance) ==");
    let ablation = run_ablation(ablation_slots);
    println!(
        "  links {} flows {} slots {}: generic {:.1} µs/slot, compiled {:.1} µs/slot, \
         speedup {:.1}x, bit-identical {}",
        ablation.num_links,
        ablation.flows,
        ablation.slots,
        ablation.per_slot_generic_ns / 1e3,
        ablation.per_slot_compiled_ns / 1e3,
        ablation.speedup,
        ablation.bit_identical,
    );
    assert!(
        ablation.bit_identical,
        "engines diverged on the 30-node instance"
    );
    assert!(
        ablation.speedup >= SPEEDUP_FLOOR,
        "compiled kernels only {:.1}x faster (floor {SPEEDUP_FLOOR}x)",
        ablation.speedup
    );

    println!("== estimator campaign ==");
    let matrix = campaign_matrix(smoke);
    let cells = matrix.cells();
    println!("  {} cells", cells.len());
    let (sequential, sequential_ns) = run_campaign(&cells, 1, cell_slots);
    for c in &sequential {
        println!(
            "  cell {:>2}: n={} {} seed {}: {} routed / {} admitted ({:.1} s)",
            c.index,
            c.num_nodes,
            c.contention,
            c.seed,
            c.flows_routed,
            c.flows_admitted,
            c.wall_ns as f64 / 1e9,
        );
    }

    println!("== parallel determinism ==");
    let parallel = parallel_section(&cells, &sequential, sequential_ns, cell_slots);
    for p in &parallel {
        println!(
            "  threads {} (used {}): {:.2}x vs sequential, identical {}",
            p.threads_requested, p.threads_used, p.speedup_vs_sequential, p.bit_identical
        );
    }

    println!("== mobility error surface ==");
    let mobility = mobility_section(if smoke { 2 } else { 6 });
    for m in &mobility {
        let worst = m
            .errors
            .iter()
            .map(|e| e.mean_abs_error_mbps)
            .fold(0.0, f64::max);
        println!(
            "  epoch {}: {} links, {} flows, reuse {}/{} units, worst mean |err| {:.3} Mbps",
            m.epoch,
            m.num_links,
            m.flows,
            m.units_reused,
            m.units_reused + m.units_compiled,
            worst
        );
        assert!(
            m.errors
                .iter()
                .all(|e| e.mean_abs_error_mbps.is_finite() && e.mean_signed_error_mbps.is_finite()),
            "epoch {}: estimator errors must stay finite under mobility",
            m.epoch
        );
    }

    if smoke {
        println!("smoke ok: bit-identity and {SPEEDUP_FLOOR}x kernel floor hold");
        return;
    }

    println!("== scale rows ==");
    let scale: Vec<ScaleRow> = [(300usize, 2_000u64), (1_000, 1_000), (3_000, 500)]
        .iter()
        .map(|&(n, slots)| {
            let row = run_scale_row(n, slots);
            match (&row.skip_reason, row.per_slot_ns) {
                (Some(reason), _) => println!("  n={n}: skipped — {reason}"),
                (None, Some(ns)) => println!(
                    "  n={n}: {} links, {:.1} µs/slot",
                    row.num_links.unwrap_or(0),
                    ns / 1e3
                ),
                _ => {}
            }
            row
        })
        .collect();

    let quantiles = error_quantiles(&sequential);
    for q in &quantiles {
        println!(
            "  {:<28} mean |err| {:.3} p50 {:.3} p90 {:.3} max {:.3} ({} samples)",
            q.estimator, q.mean_abs_mbps, q.p50_abs_mbps, q.p90_abs_mbps, q.max_abs_mbps, q.samples
        );
    }

    let report = Report {
        bench: "estimators",
        command: "cargo run --release -p awb-bench --bin estimators_bench",
        cell_slots,
        ablation,
        cells: sequential,
        error_quantiles: quantiles,
        parallel,
        scale,
        mobility,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_estimators.json", json + "\n").expect("write BENCH_estimators.json");
    println!("wrote BENCH_estimators.json");
}
