//! E2 — regenerates the §5.1 Scenario II analysis: the 4-link chain where
//! the clique constraint becomes invalid. Pass `--json` for machine-readable
//! output.

#![forbid(unsafe_code)]

use awb_bench::experiments::scenario2_report;

fn main() {
    let report = scenario2_report();
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
        return;
    }
    println!("Scenario II (paper §3.1 / §5.1): four-link chain, rates {{36, 54}} Mbps\n");
    println!(
        "optimal end-to-end throughput f       = {:>8.3} Mbps   (paper: 16.2)",
        report.optimal_mbps
    );
    println!(
        "Eq.7 bound, rate vector (54,54,54,54) = {:>8.3} Mbps   (paper: 13.5)",
        report.all54_bound_mbps
    );
    println!(
        "Eq.7 bound, rate vector (36,54,54,54) = {:>8.3} Mbps   (paper: 108/7 ≈ 15.429)",
        report.l1_36_bound_mbps
    );
    println!(
        "clique C1 time share at f             = {:>8.3}        (paper: 1.2  > 1)",
        report.c1_time_share
    );
    println!(
        "clique C2 time share at f             = {:>8.3}        (paper: 1.05 > 1)",
        report.c2_time_share
    );
    println!(
        "Eq.9 corrected upper bound            = {:>8.3} Mbps   (must be ≥ f)",
        report.eq9_upper_bound_mbps
    );
    println!(
        "\noptimal link scheduling (witness of f):\n{}",
        report.schedule
    );
    println!(
        "\nBoth fixed-rate clique bounds sit BELOW the feasible 16.2 Mbps: with\n\
         time-varying link adaptation the clique constraint no longer upper-bounds\n\
         the feasible throughput vector (the paper's Hypothesis 8 is false)."
    );
}
