//! `colgen_bench` — column generation vs. full enumeration on the §2.5 LP,
//! written to `BENCH_colgen.json` at the repo root.
//!
//! For each topology size both solvers answer the same available-bandwidth
//! query (single-link new path, light background demand on every other
//! link) on a seeded rate-coupled random declarative model. The report
//! records end-to-end wall time (minimum over iterations), simplex pivot
//! counts, the restricted master's final column count against the maximal
//! rated-set pool the full solver enumerates, and the optima themselves —
//! which must agree to 1e-6 before any timing is trusted.
//!
//! A 24-link *frontier* entry runs full enumeration in a child process
//! under a hard timeout: at that size the enumerate-everything LP blows
//! well past it (tens of seconds), while column generation answers in
//! well under a second — the measured justification for the solver knob.
//! The same 24-link instance doubles as the *pricing ablation*: the solve
//! runs once with heuristic-first pricing and once exact-only, and the
//! report gates on the heuristic cutting exact branch-and-bound
//! invocations by at least 3x while certifying the identical optimum.
//!
//! A *frontier sweep* then scales to 32–128 links on clustered topologies
//! (conflict clusters of 24 links, solved with `decompose: true`): each row
//! records the colgen wall time, pricing-loop counters, and the
//! heuristic-vs-exact pricing wall-clock split, with the full-enumeration
//! baseline run under the same timed kill (it dies inside any 24-link
//! cluster, so every sweep size times out).
//!
//! `--smoke` runs the 12-link size with a loose speedup floor and writes
//! nothing — the CI hook keeping the two solve paths equivalent.
//! `--frontier-smoke` solves the 64-link clustered instance once under a
//! wall-clock budget — the CI hook keeping the frontier reachable.
//! `--ablate-probe` is a dev mode printing per-(pricing, `stab_alpha`)
//! round/column/exact-call counts on the 24-link instance.

#![forbid(unsafe_code)]

use awb_bench::topo::{clustered_rate_coupled, random_rate_coupled};
use awb_core::{
    available_bandwidth, available_bandwidth_colgen, AvailableBandwidth, AvailableBandwidthOptions,
    ColgenOutcome, Flow, PricingMode, SolverKind,
};
use awb_net::{DeclarativeModel, LinkId, Path};
use awb_sets::maximal_independent_sets;
use serde::Serialize;
use std::time::{Duration, Instant};

const SEED: u64 = 7;
/// Sizes where both solvers run to completion.
const SIZES: [usize; 3] = [12, 16, 20];
/// The size at which full enumeration is given a timeout it cannot make.
const FRONTIER_LINKS: usize = 24;
const FRONTIER_TIMEOUT: Duration = Duration::from_secs(10);
/// Clustered sizes for the frontier sweep (conflict clusters of
/// [`SWEEP_CLUSTER`] links, `decompose: true`).
const SWEEP: [usize; 4] = [32, 64, 96, 128];
const SWEEP_CLUSTER: usize = 24;
/// Budget each sweep solve must fit in (also the full-enum kill timeout).
const SWEEP_BUDGET: Duration = Duration::from_secs(10);
/// The single-component frontier: one 64-link conflict web solved by ONE
/// pricing oracle (`decompose: false`) — the contrast row to the clustered
/// 64-link sweep entry, which the component split answers in well under
/// [`SWEEP_BUDGET`].
const SINGLE_FRONTIER_LINKS: usize = 64;
/// Generous ceiling for the single-oracle solve (measured ~2.5 min): the
/// row exists to *quantify* the single-component wall, not to win it.
const SINGLE_FRONTIER_BUDGET: Duration = Duration::from_secs(600);

#[derive(Serialize)]
struct SizeResult {
    links: usize,
    /// Maximal rated-set pool size — the full-enumeration LP's column count.
    maximal_sets: usize,
    /// Columns in the final restricted master.
    colgen_columns: usize,
    /// colgen_columns / maximal_sets.
    column_fraction: f64,
    bandwidth_mbps: f64,
    /// |full optimum − colgen optimum|; gated at 1e-6.
    optimum_delta: f64,
    full_ns: u64,
    colgen_ns: u64,
    full_pivots: usize,
    colgen_pivots: usize,
    /// full_ns / colgen_ns.
    speedup: f64,
}

#[derive(Serialize)]
struct FrontierResult {
    links: usize,
    timeout_s: u64,
    /// Whether full enumeration was killed at the timeout (expected true).
    full_timed_out: bool,
    /// Wall time of the full solve if it finished within the timeout.
    full_ns: Option<u64>,
    maximal_sets: usize,
    colgen_columns: usize,
    colgen_pivots: usize,
    colgen_ns: u64,
    bandwidth_mbps: f64,
}

#[derive(Serialize)]
struct AblationResult {
    links: usize,
    /// Exact branch-and-bound invocations with heuristic-first pricing.
    heuristic_mode_exact_calls: usize,
    /// Exact invocations with exact-only pricing (every pricing call).
    exact_mode_exact_calls: usize,
    /// exact_mode_exact_calls / heuristic_mode_exact_calls; gated at 3x.
    exact_call_reduction: f64,
    /// Columns the heuristic priced in without touching the exact oracle.
    heuristic_columns: usize,
    /// Whether the two modes' optima are bit-identical f64s (they must be:
    /// both converge to the same support and the canonical final re-solve
    /// makes the answer a pure function of it).
    optimum_bits_equal: bool,
    heuristic_mode_ns: u64,
    exact_mode_ns: u64,
}

/// The 64-link single-component row: the same rate-coupled draw as the
/// [`SIZES`]/[`FRONTIER_LINKS`] instances, four clusters' worth of links in
/// one conflict web, priced by one oracle.
#[derive(Serialize)]
struct SingleFrontierResult {
    links: usize,
    budget_s: u64,
    colgen_ns: u64,
    pricing_rounds: usize,
    columns_generated: usize,
    colgen_columns: usize,
    /// High-water mark of the stage-B master's column pool.
    pool_peak: usize,
    lp_pivots: usize,
    pricing_heuristic_ns: u64,
    pricing_exact_ns: u64,
    heuristic_columns: usize,
    exact_calls: usize,
    bandwidth_mbps: f64,
}

#[derive(Serialize)]
struct SweepResult {
    links: usize,
    clusters: usize,
    colgen_ns: u64,
    pricing_rounds: usize,
    columns_generated: usize,
    /// Columns in the final restricted master (all components).
    colgen_columns: usize,
    /// High-water mark of the stage-B masters' column pools.
    pool_peak: usize,
    lp_pivots: usize,
    /// Wall clock spent inside heuristic pricing across the solve.
    pricing_heuristic_ns: u64,
    /// Wall clock spent inside exact branch-and-bound pricing.
    pricing_exact_ns: u64,
    heuristic_columns: usize,
    exact_calls: usize,
    /// Whether full enumeration was killed at the timeout (expected true:
    /// it dies inside any 24-link cluster).
    full_timed_out: bool,
    full_ns: Option<u64>,
    bandwidth_mbps: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    command: &'static str,
    seed: u64,
    results: Vec<SizeResult>,
    frontier: FrontierResult,
    ablation: AblationResult,
    sweep: Vec<SweepResult>,
    single_frontier: SingleFrontierResult,
}

/// The benchmark query on an `n`-link topology: the new path is the first
/// link; every other link carries a light background flow, so stage A has
/// real work without ever being infeasible.
fn query(n: usize) -> (DeclarativeModel, Path, Vec<Flow>, Vec<LinkId>) {
    let (model, links) = random_rate_coupled(n, SEED);
    let new_path = Path::new(model.topology(), vec![links[0]]).expect("single link path");
    let background: Vec<Flow> = links[1..]
        .iter()
        .map(|&l| {
            let p = Path::new(model.topology(), vec![l]).expect("single link path");
            Flow::new(p, 20.0 / n as f64).expect("demand is valid")
        })
        .collect();
    (model, new_path, background, links)
}

fn options(solver: SolverKind) -> AvailableBandwidthOptions {
    AvailableBandwidthOptions {
        solver,
        ..AvailableBandwidthOptions::default()
    }
}

/// The sweep query on an `n`-link clustered topology, solved with
/// `decompose: true` so every 24-link conflict cluster becomes its own
/// component.
fn clustered_query(n: usize) -> (DeclarativeModel, Path, Vec<Flow>) {
    let (model, links) = clustered_rate_coupled(n, SWEEP_CLUSTER, SEED);
    let new_path = Path::new(model.topology(), vec![links[0]]).expect("single link path");
    let background: Vec<Flow> = links[1..]
        .iter()
        .map(|&l| {
            let p = Path::new(model.topology(), vec![l]).expect("single link path");
            Flow::new(p, 20.0 / n as f64).expect("demand is valid")
        })
        .collect();
    (model, new_path, background)
}

fn colgen_options(pricing: PricingMode, decompose: bool) -> AvailableBandwidthOptions {
    AvailableBandwidthOptions {
        solver: SolverKind::ColumnGeneration,
        pricing,
        decompose,
        ..AvailableBandwidthOptions::default()
    }
}

fn solve_colgen(
    model: &DeclarativeModel,
    background: &[Flow],
    new_path: &Path,
    options: &AvailableBandwidthOptions,
) -> ColgenOutcome {
    available_bandwidth_colgen(model, background, new_path, &[], options)
        .expect("query is feasible")
}

fn solve(
    model: &DeclarativeModel,
    background: &[Flow],
    new_path: &Path,
    solver: SolverKind,
) -> AvailableBandwidth {
    available_bandwidth(model, background, new_path, &options(solver)).expect("query is feasible")
}

/// Wall time per solve: warm up once, then take the minimum over enough
/// iterations to fill ~60 ms (at least 3 — the big sizes are seconds each).
fn time_ns(mut f: impl FnMut()) -> u64 {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_nanos().max(1);
    let iters = (60_000_000 / once).clamp(3, 1_000) as usize;
    let mut best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    u64::try_from(best).unwrap_or(u64::MAX)
}

fn run_size(links: usize) -> SizeResult {
    let (model, new_path, background, universe) = query(links);
    let full = solve(&model, &background, &new_path, SolverKind::FullEnumeration);
    let colgen = solve(&model, &background, &new_path, SolverKind::ColumnGeneration);
    let delta = (full.bandwidth_mbps() - colgen.bandwidth_mbps()).abs();
    assert!(
        delta < 1e-6,
        "{links} links: solvers disagree by {delta} ({} vs {})",
        full.bandwidth_mbps(),
        colgen.bandwidth_mbps()
    );
    let maximal = maximal_independent_sets(&model, &universe).len();
    let full_ns = time_ns(|| {
        solve(&model, &background, &new_path, SolverKind::FullEnumeration);
    });
    let colgen_ns = time_ns(|| {
        solve(&model, &background, &new_path, SolverKind::ColumnGeneration);
    });
    SizeResult {
        links,
        maximal_sets: maximal,
        colgen_columns: colgen.num_sets(),
        column_fraction: colgen.num_sets() as f64 / maximal as f64,
        bandwidth_mbps: full.bandwidth_mbps(),
        optimum_delta: delta,
        full_ns,
        colgen_ns,
        full_pivots: full.lp_pivots(),
        colgen_pivots: colgen.lp_pivots(),
        speedup: full_ns as f64 / colgen_ns as f64,
    }
}

/// Runs one full-enumeration solve in a child process (re-invoking this
/// binary with the given child-mode args) and kills it at the timeout. A
/// thread cannot be cancelled; a process can.
fn full_with_timeout(timeout: Duration, child_args: &[String]) -> (bool, Option<u64>) {
    let exe = std::env::current_exe().expect("own path");
    let started = Instant::now();
    let mut child = std::process::Command::new(exe)
        .args(child_args)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn full-enumeration child");
    loop {
        match child.try_wait().expect("poll child") {
            Some(status) => {
                assert!(status.success(), "full-enumeration child failed");
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                return (false, Some(ns));
            }
            None if started.elapsed() >= timeout => {
                child.kill().expect("kill timed-out child");
                let _ = child.wait();
                return (true, None);
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn run_frontier() -> FrontierResult {
    let (model, new_path, background, universe) = query(FRONTIER_LINKS);
    let maximal = maximal_independent_sets(&model, &universe).len();
    let started = Instant::now();
    let colgen = solve(&model, &background, &new_path, SolverKind::ColumnGeneration);
    let colgen_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let (full_timed_out, full_ns) =
        full_with_timeout(FRONTIER_TIMEOUT, &["--full-once".to_string()]);
    FrontierResult {
        links: FRONTIER_LINKS,
        timeout_s: FRONTIER_TIMEOUT.as_secs(),
        full_timed_out,
        full_ns,
        maximal_sets: maximal,
        colgen_columns: colgen.num_sets(),
        colgen_pivots: colgen.lp_pivots(),
        colgen_ns,
        bandwidth_mbps: colgen.bandwidth_mbps(),
    }
}

/// Heuristic-first vs exact-only pricing on the 24-link frontier instance.
fn run_ablation() -> AblationResult {
    let (model, new_path, background, _) = query(FRONTIER_LINKS);
    let started = Instant::now();
    let heur = solve_colgen(
        &model,
        &background,
        &new_path,
        &colgen_options(PricingMode::HeuristicFirst, false),
    );
    let heuristic_mode_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let started = Instant::now();
    let exact = solve_colgen(
        &model,
        &background,
        &new_path,
        &colgen_options(PricingMode::ExactOnly, false),
    );
    let exact_mode_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    AblationResult {
        links: FRONTIER_LINKS,
        heuristic_mode_exact_calls: heur.stats.exact_calls,
        exact_mode_exact_calls: exact.stats.exact_calls,
        exact_call_reduction: exact.stats.exact_calls as f64 / heur.stats.exact_calls.max(1) as f64,
        heuristic_columns: heur.stats.heuristic_columns,
        optimum_bits_equal: heur.result.bandwidth_mbps().to_bits()
            == exact.result.bandwidth_mbps().to_bits(),
        heuristic_mode_ns,
        exact_mode_ns,
    }
}

/// One giant oracle, no clusters: how far a single component can be pushed
/// before the clustered decomposition becomes the only viable path. No
/// full-enumeration child runs here — enumerating a 64-link conflict web
/// would exhaust memory long before any timeout fires.
fn run_single_frontier() -> SingleFrontierResult {
    let (model, new_path, background, _) = query(SINGLE_FRONTIER_LINKS);
    let opts = colgen_options(PricingMode::HeuristicFirst, false);
    let started = Instant::now();
    let out = solve_colgen(&model, &background, &new_path, &opts);
    let elapsed = started.elapsed();
    assert!(
        elapsed <= SINGLE_FRONTIER_BUDGET,
        "{SINGLE_FRONTIER_LINKS}-link single-component solve took {elapsed:?} \
         (budget {SINGLE_FRONTIER_BUDGET:?})"
    );
    SingleFrontierResult {
        links: SINGLE_FRONTIER_LINKS,
        budget_s: SINGLE_FRONTIER_BUDGET.as_secs(),
        colgen_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        pricing_rounds: out.stats.pricing_rounds,
        columns_generated: out.stats.columns_generated,
        colgen_columns: out.result.num_sets(),
        pool_peak: out.stats.pool_peak,
        lp_pivots: out.result.lp_pivots(),
        pricing_heuristic_ns: out.stats.heuristic_ns,
        pricing_exact_ns: out.stats.exact_ns,
        heuristic_columns: out.stats.heuristic_columns,
        exact_calls: out.stats.exact_calls,
        bandwidth_mbps: out.result.bandwidth_mbps(),
    }
}

fn run_sweep_size(links: usize) -> SweepResult {
    let (model, new_path, background) = clustered_query(links);
    let opts = colgen_options(PricingMode::HeuristicFirst, true);
    let started = Instant::now();
    let out = solve_colgen(&model, &background, &new_path, &opts);
    let colgen_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let (full_timed_out, full_ns) = full_with_timeout(
        SWEEP_BUDGET,
        &["--full-clustered".to_string(), links.to_string()],
    );
    SweepResult {
        links,
        clusters: links.div_ceil(SWEEP_CLUSTER),
        colgen_ns,
        pricing_rounds: out.stats.pricing_rounds,
        columns_generated: out.stats.columns_generated,
        colgen_columns: out.result.num_sets(),
        pool_peak: out.stats.pool_peak,
        lp_pivots: out.result.lp_pivots(),
        pricing_heuristic_ns: out.stats.heuristic_ns,
        pricing_exact_ns: out.stats.exact_ns,
        heuristic_columns: out.stats.heuristic_columns,
        exact_calls: out.stats.exact_calls,
        full_timed_out,
        full_ns,
        bandwidth_mbps: out.result.bandwidth_mbps(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--full-once") {
        // Child mode for the frontier timeout: one full-enumeration solve.
        let (model, new_path, background, _) = query(FRONTIER_LINKS);
        let out = solve(&model, &background, &new_path, SolverKind::FullEnumeration);
        println!("{}", out.bandwidth_mbps());
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--full-clustered") {
        // Child mode for the sweep timeout: one full-enumeration solve of
        // the clustered instance, with the same decomposition colgen gets.
        let links: usize = args
            .get(pos + 1)
            .expect("--full-clustered takes a size")
            .parse()
            .expect("--full-clustered size parses");
        let (model, new_path, background) = clustered_query(links);
        let opts = AvailableBandwidthOptions {
            solver: SolverKind::FullEnumeration,
            decompose: true,
            ..AvailableBandwidthOptions::default()
        };
        let out =
            available_bandwidth(&model, &background, &new_path, &opts).expect("query is feasible");
        println!("{}", out.bandwidth_mbps());
        return;
    }
    if args.iter().any(|a| a == "--frontier-smoke") {
        // CI hook: the 64-link clustered frontier must stay solvable well
        // inside the sweep budget.
        let (model, new_path, background) = clustered_query(64);
        let opts = colgen_options(PricingMode::HeuristicFirst, true);
        let started = Instant::now();
        let out = solve_colgen(&model, &background, &new_path, &opts);
        let elapsed = started.elapsed();
        assert!(
            elapsed <= SWEEP_BUDGET,
            "64-link frontier solve took {elapsed:?} (budget {SWEEP_BUDGET:?})"
        );
        println!(
            "colgen_bench frontier smoke ok: 64 links in {:.2}s \
             ({} rounds, {} columns, {} exact calls, {:.3} Mbps)",
            elapsed.as_secs_f64(),
            out.stats.pricing_rounds,
            out.result.num_sets(),
            out.stats.exact_calls,
            out.result.bandwidth_mbps(),
        );
        return;
    }
    if args.iter().any(|a| a == "--ablate-probe") {
        // Hidden dev mode: exact-call counts per (pricing, stab_alpha).
        let (model, new_path, background, _) = query(FRONTIER_LINKS);
        for (label, pricing, alpha) in [
            ("exact  a=1.0", PricingMode::ExactOnly, 1.0),
            ("exact  a=0.5", PricingMode::ExactOnly, 0.5),
            ("heur   a=1.0", PricingMode::HeuristicFirst, 1.0),
            ("heur   a=0.7", PricingMode::HeuristicFirst, 0.7),
            ("heur   a=0.5", PricingMode::HeuristicFirst, 0.5),
            ("heur   a=0.3", PricingMode::HeuristicFirst, 0.3),
        ] {
            let mut opts = colgen_options(pricing, false);
            opts.stab_alpha = alpha;
            let started = Instant::now();
            let out = solve_colgen(&model, &background, &new_path, &opts);
            println!(
                "{label}: {} rounds, {} columns ({} heuristic), {} exact calls, \
                 {} pivots, {:.1}ms, f={:.17e}",
                out.stats.pricing_rounds,
                out.stats.columns_generated,
                out.stats.heuristic_columns,
                out.stats.exact_calls,
                out.result.lp_pivots(),
                started.elapsed().as_secs_f64() * 1e3,
                out.result.bandwidth_mbps(),
            );
        }
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        let result = run_size(12);
        assert!(
            result.speedup >= 2.0,
            "column generation is not ahead of full enumeration: {:.2}x",
            result.speedup
        );
        println!(
            "colgen_bench smoke ok: 12 links, optimum delta {:.1e}, {}/{} columns, \
             colgen {:.1}x full enumeration",
            result.optimum_delta, result.colgen_columns, result.maximal_sets, result.speedup
        );
        return;
    }

    let results: Vec<SizeResult> = SIZES.iter().map(|&n| run_size(n)).collect();
    // The ISSUE's acceptance bar, checked on the 16-link topology.
    let r16 = results.iter().find(|r| r.links == 16).expect("16 in SIZES");
    assert!(
        r16.column_fraction <= 0.10,
        "colgen generated {:.1}% of the maximal pool at 16 links",
        100.0 * r16.column_fraction
    );
    assert!(
        r16.speedup >= 10.0,
        "colgen speedup at 16 links is only {:.1}x",
        r16.speedup
    );
    let frontier = run_frontier();
    assert!(
        frontier.full_timed_out,
        "full enumeration unexpectedly finished {} links within {}s",
        frontier.links, frontier.timeout_s
    );
    let ablation = run_ablation();
    assert!(
        ablation.exact_call_reduction >= 3.0,
        "heuristic-first pricing only cut exact calls by {:.2}x ({} vs {})",
        ablation.exact_call_reduction,
        ablation.exact_mode_exact_calls,
        ablation.heuristic_mode_exact_calls
    );
    assert!(
        ablation.optimum_bits_equal,
        "heuristic-first and exact-only pricing disagree on the optimum"
    );
    let sweep: Vec<SweepResult> = SWEEP.iter().map(|&n| run_sweep_size(n)).collect();
    let single_frontier = run_single_frontier();
    for s in &sweep {
        assert!(
            s.full_timed_out,
            "full enumeration unexpectedly finished {} clustered links within {}s",
            s.links,
            SWEEP_BUDGET.as_secs()
        );
        assert!(
            Duration::from_nanos(s.colgen_ns) <= SWEEP_BUDGET,
            "{} links: colgen took {:.2}s (budget {}s)",
            s.links,
            s.colgen_ns as f64 / 1e9,
            SWEEP_BUDGET.as_secs()
        );
    }

    for r in &results {
        println!(
            "{:>2} links: {:>5} maximal sets vs {:>3} columns ({:>4.1}%); \
             full {:>11} ns / {:>4} pivots, colgen {:>10} ns / {:>4} pivots ({:.1}x)",
            r.links,
            r.maximal_sets,
            r.colgen_columns,
            100.0 * r.column_fraction,
            r.full_ns,
            r.full_pivots,
            r.colgen_ns,
            r.colgen_pivots,
            r.speedup,
        );
    }
    println!(
        "{:>2} links: full enumeration killed at {}s; colgen solved in {:.2}s \
         ({} columns of {} maximal sets)",
        frontier.links,
        frontier.timeout_s,
        frontier.colgen_ns as f64 / 1e9,
        frontier.colgen_columns,
        frontier.maximal_sets,
    );
    println!(
        "ablation at {} links: exact calls {} -> {} ({:.1}x cut), \
         {} heuristic columns, optima bit-identical: {}",
        ablation.links,
        ablation.exact_mode_exact_calls,
        ablation.heuristic_mode_exact_calls,
        ablation.exact_call_reduction,
        ablation.heuristic_columns,
        ablation.optimum_bits_equal,
    );
    for s in &sweep {
        println!(
            "{:>3} links / {} clusters: colgen {:>6.2}s ({} rounds, {} columns, {} pivots; \
             pricing {:.0}ms heuristic + {:.0}ms exact, {} exact calls); full enum killed: {}",
            s.links,
            s.clusters,
            s.colgen_ns as f64 / 1e9,
            s.pricing_rounds,
            s.colgen_columns,
            s.lp_pivots,
            s.pricing_heuristic_ns as f64 / 1e6,
            s.pricing_exact_ns as f64 / 1e6,
            s.exact_calls,
            s.full_timed_out,
        );
    }
    println!(
        "{:>3} links / 1 component: colgen {:>6.2}s ({} rounds, {} columns, peak pool {}, \
         {} exact calls) — the single-oracle wall the clustered sweep avoids",
        single_frontier.links,
        single_frontier.colgen_ns as f64 / 1e9,
        single_frontier.pricing_rounds,
        single_frontier.colgen_columns,
        single_frontier.pool_peak,
        single_frontier.exact_calls,
    );
    let report = Report {
        bench: "colgen-vs-full-enumeration",
        command: "cargo run --release -p awb-bench --bin colgen_bench",
        seed: SEED,
        results,
        frontier,
        ablation,
        sweep,
        single_frontier,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_colgen.json", json + "\n").expect("write BENCH_colgen.json");
    println!("wrote BENCH_colgen.json");
}
