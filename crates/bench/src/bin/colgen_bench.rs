//! `colgen_bench` — column generation vs. full enumeration on the §2.5 LP,
//! written to `BENCH_colgen.json` at the repo root.
//!
//! For each topology size both solvers answer the same available-bandwidth
//! query (single-link new path, light background demand on every other
//! link) on a seeded rate-coupled random declarative model. The report
//! records end-to-end wall time (minimum over iterations), simplex pivot
//! counts, the restricted master's final column count against the maximal
//! rated-set pool the full solver enumerates, and the optima themselves —
//! which must agree to 1e-6 before any timing is trusted.
//!
//! A 24-link *frontier* entry runs full enumeration in a child process
//! under a hard timeout: at that size the enumerate-everything LP blows
//! well past it (tens of seconds), while column generation answers in
//! well under a second — the measured justification for the solver knob.
//!
//! `--smoke` runs the 12-link size with a loose speedup floor and writes
//! nothing — the CI hook keeping the two solve paths equivalent.

#![forbid(unsafe_code)]

use awb_bench::topo::random_rate_coupled;
use awb_core::{
    available_bandwidth, AvailableBandwidth, AvailableBandwidthOptions, Flow, SolverKind,
};
use awb_net::{DeclarativeModel, LinkId, Path};
use awb_sets::maximal_independent_sets;
use serde::Serialize;
use std::time::{Duration, Instant};

const SEED: u64 = 7;
/// Sizes where both solvers run to completion.
const SIZES: [usize; 3] = [12, 16, 20];
/// The size at which full enumeration is given a timeout it cannot make.
const FRONTIER_LINKS: usize = 24;
const FRONTIER_TIMEOUT: Duration = Duration::from_secs(10);

#[derive(Serialize)]
struct SizeResult {
    links: usize,
    /// Maximal rated-set pool size — the full-enumeration LP's column count.
    maximal_sets: usize,
    /// Columns in the final restricted master.
    colgen_columns: usize,
    /// colgen_columns / maximal_sets.
    column_fraction: f64,
    bandwidth_mbps: f64,
    /// |full optimum − colgen optimum|; gated at 1e-6.
    optimum_delta: f64,
    full_ns: u64,
    colgen_ns: u64,
    full_pivots: usize,
    colgen_pivots: usize,
    /// full_ns / colgen_ns.
    speedup: f64,
}

#[derive(Serialize)]
struct FrontierResult {
    links: usize,
    timeout_s: u64,
    /// Whether full enumeration was killed at the timeout (expected true).
    full_timed_out: bool,
    /// Wall time of the full solve if it finished within the timeout.
    full_ns: Option<u64>,
    maximal_sets: usize,
    colgen_columns: usize,
    colgen_pivots: usize,
    colgen_ns: u64,
    bandwidth_mbps: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    command: &'static str,
    seed: u64,
    results: Vec<SizeResult>,
    frontier: FrontierResult,
}

/// The benchmark query on an `n`-link topology: the new path is the first
/// link; every other link carries a light background flow, so stage A has
/// real work without ever being infeasible.
fn query(n: usize) -> (DeclarativeModel, Path, Vec<Flow>, Vec<LinkId>) {
    let (model, links) = random_rate_coupled(n, SEED);
    let new_path = Path::new(model.topology(), vec![links[0]]).expect("single link path");
    let background: Vec<Flow> = links[1..]
        .iter()
        .map(|&l| {
            let p = Path::new(model.topology(), vec![l]).expect("single link path");
            Flow::new(p, 20.0 / n as f64).expect("demand is valid")
        })
        .collect();
    (model, new_path, background, links)
}

fn options(solver: SolverKind) -> AvailableBandwidthOptions {
    AvailableBandwidthOptions {
        solver,
        ..AvailableBandwidthOptions::default()
    }
}

fn solve(
    model: &DeclarativeModel,
    background: &[Flow],
    new_path: &Path,
    solver: SolverKind,
) -> AvailableBandwidth {
    available_bandwidth(model, background, new_path, &options(solver)).expect("query is feasible")
}

/// Wall time per solve: warm up once, then take the minimum over enough
/// iterations to fill ~60 ms (at least 3 — the big sizes are seconds each).
fn time_ns(mut f: impl FnMut()) -> u64 {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_nanos().max(1);
    let iters = (60_000_000 / once).clamp(3, 1_000) as usize;
    let mut best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    u64::try_from(best).unwrap_or(u64::MAX)
}

fn run_size(links: usize) -> SizeResult {
    let (model, new_path, background, universe) = query(links);
    let full = solve(&model, &background, &new_path, SolverKind::FullEnumeration);
    let colgen = solve(&model, &background, &new_path, SolverKind::ColumnGeneration);
    let delta = (full.bandwidth_mbps() - colgen.bandwidth_mbps()).abs();
    assert!(
        delta < 1e-6,
        "{links} links: solvers disagree by {delta} ({} vs {})",
        full.bandwidth_mbps(),
        colgen.bandwidth_mbps()
    );
    let maximal = maximal_independent_sets(&model, &universe).len();
    let full_ns = time_ns(|| {
        solve(&model, &background, &new_path, SolverKind::FullEnumeration);
    });
    let colgen_ns = time_ns(|| {
        solve(&model, &background, &new_path, SolverKind::ColumnGeneration);
    });
    SizeResult {
        links,
        maximal_sets: maximal,
        colgen_columns: colgen.num_sets(),
        column_fraction: colgen.num_sets() as f64 / maximal as f64,
        bandwidth_mbps: full.bandwidth_mbps(),
        optimum_delta: delta,
        full_ns,
        colgen_ns,
        full_pivots: full.lp_pivots(),
        colgen_pivots: colgen.lp_pivots(),
        speedup: full_ns as f64 / colgen_ns as f64,
    }
}

/// Runs the full-enumeration solve at the frontier size in a child process
/// (re-invoking this binary with `--full-once`) and kills it at the
/// timeout. A thread cannot be cancelled; a process can.
fn full_with_timeout(timeout: Duration) -> (bool, Option<u64>) {
    let exe = std::env::current_exe().expect("own path");
    let started = Instant::now();
    let mut child = std::process::Command::new(exe)
        .arg("--full-once")
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn full-enumeration child");
    loop {
        match child.try_wait().expect("poll child") {
            Some(status) => {
                assert!(status.success(), "full-enumeration child failed");
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                return (false, Some(ns));
            }
            None if started.elapsed() >= timeout => {
                child.kill().expect("kill timed-out child");
                let _ = child.wait();
                return (true, None);
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn run_frontier() -> FrontierResult {
    let (model, new_path, background, universe) = query(FRONTIER_LINKS);
    let maximal = maximal_independent_sets(&model, &universe).len();
    let started = Instant::now();
    let colgen = solve(&model, &background, &new_path, SolverKind::ColumnGeneration);
    let colgen_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let (full_timed_out, full_ns) = full_with_timeout(FRONTIER_TIMEOUT);
    FrontierResult {
        links: FRONTIER_LINKS,
        timeout_s: FRONTIER_TIMEOUT.as_secs(),
        full_timed_out,
        full_ns,
        maximal_sets: maximal,
        colgen_columns: colgen.num_sets(),
        colgen_pivots: colgen.lp_pivots(),
        colgen_ns,
        bandwidth_mbps: colgen.bandwidth_mbps(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--full-once") {
        // Child mode for the frontier timeout: one full-enumeration solve.
        let (model, new_path, background, _) = query(FRONTIER_LINKS);
        let out = solve(&model, &background, &new_path, SolverKind::FullEnumeration);
        println!("{}", out.bandwidth_mbps());
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        let result = run_size(12);
        assert!(
            result.speedup >= 2.0,
            "column generation is not ahead of full enumeration: {:.2}x",
            result.speedup
        );
        println!(
            "colgen_bench smoke ok: 12 links, optimum delta {:.1e}, {}/{} columns, \
             colgen {:.1}x full enumeration",
            result.optimum_delta, result.colgen_columns, result.maximal_sets, result.speedup
        );
        return;
    }

    let results: Vec<SizeResult> = SIZES.iter().map(|&n| run_size(n)).collect();
    // The ISSUE's acceptance bar, checked on the 16-link topology.
    let r16 = results.iter().find(|r| r.links == 16).expect("16 in SIZES");
    assert!(
        r16.column_fraction <= 0.10,
        "colgen generated {:.1}% of the maximal pool at 16 links",
        100.0 * r16.column_fraction
    );
    assert!(
        r16.speedup >= 10.0,
        "colgen speedup at 16 links is only {:.1}x",
        r16.speedup
    );
    let frontier = run_frontier();
    assert!(
        frontier.full_timed_out,
        "full enumeration unexpectedly finished {} links within {}s",
        frontier.links, frontier.timeout_s
    );

    for r in &results {
        println!(
            "{:>2} links: {:>5} maximal sets vs {:>3} columns ({:>4.1}%); \
             full {:>11} ns / {:>4} pivots, colgen {:>10} ns / {:>4} pivots ({:.1}x)",
            r.links,
            r.maximal_sets,
            r.colgen_columns,
            100.0 * r.column_fraction,
            r.full_ns,
            r.full_pivots,
            r.colgen_ns,
            r.colgen_pivots,
            r.speedup,
        );
    }
    println!(
        "{:>2} links: full enumeration killed at {}s; colgen solved in {:.2}s \
         ({} columns of {} maximal sets)",
        frontier.links,
        frontier.timeout_s,
        frontier.colgen_ns as f64 / 1e9,
        frontier.colgen_columns,
        frontier.maximal_sets,
    );
    let report = Report {
        bench: "colgen-vs-full-enumeration",
        command: "cargo run --release -p awb-bench --bin colgen_bench",
        seed: SEED,
        results,
        frontier,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_colgen.json", json + "\n").expect("write BENCH_colgen.json");
    println!("wrote BENCH_colgen.json");
}
