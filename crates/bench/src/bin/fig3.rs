//! E4 — regenerates Fig. 3: available bandwidth of each flow's path under
//! the three routing metrics, flows joining one by one (2 Mbps each) until
//! the first unsatisfied demand. Pass `--json` for machine-readable output.

#![forbid(unsafe_code)]

use awb_bench::experiments::{fig3, FLOW_DEMAND_MBPS};
use awb_bench::table::{f3, print_table};

fn main() {
    let rows = fig3();
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("rows serialize")
        );
        return;
    }
    println!("Fig. 3: available bandwidth per flow and routing metric");
    println!("30 nodes, 400 m × 600 m, 802.11a rates, demand {FLOW_DEMAND_MBPS} Mbps per flow");
    println!("(the run under each metric stops at its first rejected flow)\n");
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.metric.clone(),
                r.flow.to_string(),
                r.hops.to_string(),
                f3(r.available_mbps),
                if r.admitted { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &["metric", "flow", "hops", "available (Mbps)", "admitted"],
        &data,
    );
    println!();
    for metric in ["hop count", "e2eTD", "average-e2eD"] {
        let failed_at = rows
            .iter()
            .find(|r| r.metric == metric && !r.admitted)
            .map(|r| r.flow.to_string())
            .unwrap_or_else(|| "none (all admitted)".to_string());
        println!("{metric:>14}: first failure at flow {failed_at}");
    }
}
