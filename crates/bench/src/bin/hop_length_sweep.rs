//! Extension experiment: the hop-count vs link-rate tradeoff the paper
//! inherits from its reference [1] (Zhai & Fang, ICNP'06). For a fixed
//! end-to-end distance, fewer hops mean longer, slower links; more hops mean
//! faster links but more self-interference. The Eq. 6 LP scores every
//! configuration exactly.

#![forbid(unsafe_code)]

use awb_core::path_capacity;
use awb_phy::{Phy, Rate};
use awb_workloads::chain_model;

fn main() {
    let phy = Phy::paper_default();
    println!("End-to-end capacity of an evenly spaced chain (Eq. 6, no background)\n");
    for &total in &[150.0f64, 280.0, 420.0, 560.0] {
        println!("total distance {total} m:");
        let mut best: Option<(usize, f64)> = None;
        for hops in 1..=8usize {
            let hop_len = total / hops as f64;
            if hop_len > phy.max_range() {
                println!("  {hops} hop(s) @ {hop_len:.0} m: out of decode range");
                continue;
            }
            let (model, path) = chain_model(hops, hop_len, phy.clone());
            let alone = model
                .max_rate_in_set(path.links()[0], &[path.links()[0]])
                .map_or(0.0, Rate::as_mbps);
            let capacity = path_capacity(&model, &path)
                .expect("chains are feasible")
                .bandwidth_mbps();
            println!(
                "  {hops} hop(s) @ {hop_len:.0} m ({alone:.0} Mbps links): {capacity:.3} Mbps end-to-end"
            );
            if best.is_none_or(|(_, b)| capacity > b) {
                best = Some((hops, capacity));
            }
        }
        if let Some((hops, capacity)) = best {
            println!("  -> best: {hops} hop(s), {capacity:.3} Mbps\n");
        }
    }
    println!(
        "Neither extreme wins everywhere: the optimum moves with distance, which is\n\
         why rate-aware routing metrics (e2eTD, average-e2eD) beat hop count."
    );
}
