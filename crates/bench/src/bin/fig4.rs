//! E5 — regenerates Fig. 4: the five §4 estimators against the Eq. 6 ground
//! truth on the paths found by average-e2eD. Pass `--json` for
//! machine-readable output.

#![forbid(unsafe_code)]

use awb_bench::experiments::fig4;
use awb_bench::table::{f3, print_table};
use serde::Serialize;

#[derive(Serialize)]
struct JsonOut<'a> {
    rows: &'a [awb_bench::rows::Fig4Row],
    errors: &'a [awb_bench::rows::EstimatorError],
}

fn main() {
    let (rows, errors) = fig4();
    if std::env::args().any(|a| a == "--json") {
        let out = JsonOut {
            rows: &rows,
            errors: &errors,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("rows serialize")
        );
        return;
    }
    println!("Fig. 4: estimated vs true available bandwidth (paths found by average-e2eD)\n");
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.flow.to_string(),
                f3(r.truth_mbps),
                f3(r.clique_mbps),
                f3(r.bottleneck_mbps),
                f3(r.min_both_mbps),
                f3(r.conservative_mbps),
                f3(r.expected_time_mbps),
            ]
        })
        .collect();
    print_table(
        &[
            "flow",
            "truth (Eq.6)",
            "clique (Eq.11)",
            "bottleneck (Eq.10)",
            "min (Eq.12)",
            "conservative (Eq.13)",
            "expected-T (Eq.15)",
        ],
        &data,
    );
    println!("\nMean estimation error vs ground truth:");
    let err_rows: Vec<Vec<String>> = errors
        .iter()
        .map(|e| {
            vec![
                e.estimator.clone(),
                f3(e.mean_abs_error_mbps),
                f3(e.mean_signed_error_mbps),
            ]
        })
        .collect();
    print_table(&["estimator", "mean |err|", "mean signed err"], &err_rows);
    let best = errors
        .iter()
        .min_by(|a, b| {
            a.mean_abs_error_mbps
                .partial_cmp(&b.mean_abs_error_mbps)
                .expect("errors are finite")
        })
        .expect("five estimators ran");
    println!("\nbest estimator: {}", best.estimator);
}
