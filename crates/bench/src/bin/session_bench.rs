//! `session_bench` — cold per-call solves vs. a warm compiled-query
//! [`Session`] on a routing-style sweep, written to `BENCH_session.json`
//! at the repo root.
//!
//! The sweep reproduces the query mix of an admission/routing loop: a few
//! candidate paths, each evaluated against many background demand levels.
//! Every query on one candidate touches the same link universe, so the
//! cold path re-enumerates the identical rate-coupled independent-set pool
//! over and over while the warm path compiles each universe once and
//! answers the rest from the session's instance cache.
//!
//! Results are asserted bit-for-bit identical between the two paths before
//! any timing is trusted — the session API is a caching layer, not an
//! approximation.
//!
//! `--smoke` runs the small sweep with a loose speedup floor and writes
//! nothing — the CI hook keeping the two query paths equivalent.

#![forbid(unsafe_code)]

use awb_bench::topo::random_rate_coupled;
use awb_core::{available_bandwidth, AvailableBandwidthOptions, Flow, Session};
use awb_net::{DeclarativeModel, LinkId, Path};
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 7;
/// Background demand multipliers swept per candidate path (all feasible:
/// the 20-link seeded topology accepts ~1 Mbps per link).
const LAMBDAS: [f64; 12] = [
    0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6,
];

/// One sweep configuration: `spurs` candidate paths on an `links`-link
/// topology, each with background flows on a `window`-link neighborhood
/// (universe size = window + 1).
struct SweepConfig {
    links: usize,
    spurs: usize,
    window: usize,
}

/// The full-bench configuration gated by the acceptance bar: 16-link
/// universes on a 20-link topology.
const MAIN: SweepConfig = SweepConfig {
    links: 20,
    spurs: 4,
    window: 15,
};
const SMALL: SweepConfig = SweepConfig {
    links: 12,
    spurs: 2,
    window: 9,
};

#[derive(Serialize)]
struct SweepResult {
    links: usize,
    universe_links: usize,
    /// Distinct link universes in the sweep (= compiled instances).
    universes: usize,
    /// Total (path, background) queries.
    queries: usize,
    /// Session counters after one warm pass.
    instances_compiled: usize,
    warm_queries: usize,
    /// Whole-sweep wall time, min over iterations.
    cold_ns: u64,
    warm_ns: u64,
    /// cold_ns / warm_ns.
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    command: &'static str,
    seed: u64,
    results: Vec<SweepResult>,
}

/// Builds the sweep's query list: for spur `s`, the new path is link `s`
/// and the background loads the next `window` links at each λ.
fn build_sweep(config: &SweepConfig) -> (DeclarativeModel, Vec<(Path, Vec<Flow>)>) {
    let (model, links) = random_rate_coupled(config.links, SEED);
    let t = model.topology();
    let base = 20.0 / config.links as f64;
    let mut queries = Vec::new();
    for s in 0..config.spurs {
        let new_path = Path::new(t, vec![links[s]]).expect("single link path");
        let neighborhood: Vec<LinkId> = links[s + 1..s + 1 + config.window].to_vec();
        for lambda in LAMBDAS {
            let background: Vec<Flow> = neighborhood
                .iter()
                .map(|&l| {
                    let p = Path::new(t, vec![l]).expect("single link path");
                    Flow::new(p, lambda * base).expect("demand is valid")
                })
                .collect();
            queries.push((new_path.clone(), background));
        }
    }
    (model, queries)
}

fn run_cold(model: &DeclarativeModel, queries: &[(Path, Vec<Flow>)]) -> Vec<u64> {
    let options = AvailableBandwidthOptions::default();
    queries
        .iter()
        .map(|(path, background)| {
            available_bandwidth(model, background, path, &options)
                .expect("sweep backgrounds are feasible")
                .bandwidth_mbps()
                .to_bits()
        })
        .collect()
}

fn run_warm(model: &DeclarativeModel, queries: &[(Path, Vec<Flow>)]) -> (Vec<u64>, usize, usize) {
    let mut session = Session::new(model, AvailableBandwidthOptions::default());
    let bits = queries
        .iter()
        .map(|(path, background)| {
            session
                .query(background, path)
                .expect("sweep backgrounds are feasible")
                .bandwidth_mbps()
                .to_bits()
        })
        .collect();
    let stats = session.stats();
    (bits, stats.compiles, stats.warm_queries)
}

/// Wall time per sweep: warm up once, then take the minimum over enough
/// iterations to fill ~60 ms (at least 3).
fn time_ns(mut f: impl FnMut()) -> u64 {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_nanos().max(1);
    let iters = (60_000_000 / once).clamp(3, 1_000) as usize;
    let mut best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    u64::try_from(best).unwrap_or(u64::MAX)
}

fn run_sweep(config: &SweepConfig) -> SweepResult {
    let (model, queries) = build_sweep(config);
    let cold_bits = run_cold(&model, &queries);
    let (warm_bits, compiles, warm_queries) = run_warm(&model, &queries);
    assert_eq!(
        cold_bits, warm_bits,
        "{} links: warm session answers diverge from cold solves",
        config.links
    );
    assert_eq!(compiles, config.spurs, "one instance per distinct universe");
    let cold_ns = time_ns(|| {
        run_cold(&model, &queries);
    });
    let warm_ns = time_ns(|| {
        run_warm(&model, &queries);
    });
    SweepResult {
        links: config.links,
        universe_links: config.window + 1,
        universes: config.spurs,
        queries: queries.len(),
        instances_compiled: compiles,
        warm_queries,
        cold_ns,
        warm_ns,
        speedup: cold_ns as f64 / warm_ns as f64,
    }
}

fn print_result(r: &SweepResult) {
    println!(
        "{:>2}-link universes: {:>2} queries over {} universes; \
         cold {:>12} ns, warm {:>11} ns ({:.1}x, {} compiles + {} warm hits)",
        r.universe_links,
        r.queries,
        r.universes,
        r.cold_ns,
        r.warm_ns,
        r.speedup,
        r.instances_compiled,
        r.warm_queries,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        let result = run_sweep(&SMALL);
        assert!(
            result.speedup >= 2.0,
            "warm session is not ahead of cold solves: {:.2}x",
            result.speedup
        );
        println!(
            "session_bench smoke ok: {}-link universes, bit-identical answers, \
             warm {:.1}x cold",
            result.universe_links, result.speedup
        );
        return;
    }

    let results = vec![run_sweep(&SMALL), run_sweep(&MAIN)];
    for r in &results {
        print_result(r);
    }
    // The ISSUE's acceptance bar: ≥ 5x warm-query speedup on 16-link
    // universes.
    let main = results.last().expect("MAIN ran");
    assert!(
        main.speedup >= 5.0,
        "warm-session speedup on {}-link universes is only {:.1}x",
        main.universe_links,
        main.speedup
    );
    let report = Report {
        bench: "session-warm-vs-cold",
        command: "cargo run --release -p awb-bench --bin session_bench",
        seed: SEED,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_session.json", json + "\n").expect("write BENCH_session.json");
    println!("wrote BENCH_session.json");
}
