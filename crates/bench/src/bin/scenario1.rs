//! E1 — regenerates the Scenario I discussion of §1/Fig. 1: optimal
//! available bandwidth over `L3` vs the idle-time estimate, sweeping the
//! background load λ. Pass `--json` for machine-readable output.

#![forbid(unsafe_code)]

use awb_bench::experiments::scenario1_sweep;
use awb_bench::table::{f3, print_table};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let lambdas = [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5];
    let rows = scenario1_sweep(&lambdas, 40_000);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("rows serialize")
        );
        return;
    }
    println!("Scenario I (paper §1, Fig. 1): available bandwidth over L3, r = 54 Mbps");
    println!("optimal = (1-λ)·r   idle-estimate = (1-2λ)·r   sim = CSMA-measured idle\n");
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.lambda),
                f3(r.optimal_mbps),
                f3(r.idle_estimate_mbps),
                f3(r.sim_estimate_mbps),
                f3(r.optimal_mbps - r.idle_estimate_mbps),
            ]
        })
        .collect();
    print_table(
        &[
            "λ",
            "optimal (Mbps)",
            "idle est (Mbps)",
            "sim est (Mbps)",
            "gap",
        ],
        &data,
    );
}
