//! Utility: scans topology/pair seeds and reports, per seed, the first
//! failing flow index under each routing metric — used to pick a
//! representative instance for the Fig. 3 story (the paper does not publish
//! its random draw). Usage: `seed_scan [max_topo_seed] [max_pairs_seed]`.

#![forbid(unsafe_code)]

use awb_routing::{admit_sequentially, AdmissionConfig, RoutingMetric};
use awb_workloads::{connected_pairs, RandomTopology, RandomTopologyConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_topo: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let max_pairs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    println!("topo_seed pairs_seed | hop e2eTD avg-e2eD   (first failing flow, 9 = none)");
    for topo_seed in 0..max_topo {
        let rt = RandomTopology::generate(RandomTopologyConfig {
            seed: topo_seed,
            ..RandomTopologyConfig::default()
        });
        for pairs_seed in 0..max_pairs {
            let pairs = connected_pairs(rt.model(), 8, 2..=4, pairs_seed);
            let mut firsts = Vec::new();
            for metric in RoutingMetric::ALL {
                let out =
                    admit_sequentially(rt.model(), &pairs, metric, &AdmissionConfig::default())
                        .expect("admission runs");
                let first_fail = out
                    .iter()
                    .find(|o| !o.admitted)
                    .map(|o| o.index + 1)
                    .unwrap_or(9);
                firsts.push(first_fail);
            }
            let marker = if firsts[2] > firsts[1] && firsts[1] > firsts[0] {
                "  <- strict"
            } else {
                ""
            };
            println!(
                "{topo_seed:>9} {pairs_seed:>10} | {:>3} {:>5} {:>8}{marker}",
                firsts[0], firsts[1], firsts[2]
            );
        }
    }
}
