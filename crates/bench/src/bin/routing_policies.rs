//! Extension experiment (paper §4's proposal, not evaluated there):
//! compares the three additive routing metrics of Fig. 3 against
//! *widest-path routing by estimated available bandwidth* for every §4
//! estimator, on the same random instance and admission procedure.

#![forbid(unsafe_code)]

use awb_bench::experiments::paper_random_instance;
use awb_bench::table::{f3, print_table};
use awb_estimate::Estimator;
use awb_routing::{admit_sequentially_with_policy, AdmissionConfig, RoutePolicy, RoutingMetric};

fn main() {
    let (model, pairs) = paper_random_instance();
    let mut policies: Vec<RoutePolicy> = RoutingMetric::ALL
        .into_iter()
        .map(RoutePolicy::Additive)
        .collect();
    policies.extend(Estimator::ALL.into_iter().map(RoutePolicy::WidestEstimate));

    println!("Admission under every routing policy (2 Mbps flows, stop at first failure)\n");
    let mut rows = Vec::new();
    for policy in policies {
        let out =
            admit_sequentially_with_policy(&model, &pairs, policy, &AdmissionConfig::default())
                .expect("admission runs on feasible backgrounds");
        let admitted = out.iter().filter(|o| o.admitted).count();
        let first_fail = out
            .iter()
            .find(|o| !o.admitted)
            .map(|o| (o.index + 1).to_string())
            .unwrap_or_else(|| "-".to_string());
        let mean_available = if out.is_empty() {
            0.0
        } else {
            out.iter().map(|o| o.available_mbps).sum::<f64>() / out.len() as f64
        };
        rows.push(vec![
            policy.label(),
            admitted.to_string(),
            first_fail,
            f3(mean_available),
        ]);
    }
    print_table(
        &["policy", "admitted", "first failure", "mean avail (Mbps)"],
        &rows,
    );
    println!(
        "\nThe additive average-e2eD metric and the widest background-aware estimators\n\
         should admit the most flows; hop count the fewest."
    );
}
