//! `service_load_bench` — sustained-load comparison of the nonblocking
//! reactor server against the blocking thread-pool server, written to
//! `BENCH_service_load.json` at the repo root.
//!
//! A single-threaded nonblocking load generator (built on the reactor's
//! own [`Poller`]) drives 1k+ concurrent connections, each keeping one
//! request in flight. The grid covers:
//!
//! - **server**: `reactor` (epoll event loop + small worker pool) vs
//!   `blocking` (the legacy server given one worker thread per connection,
//!   i.e. the thread-per-connection architecture it emulates);
//! - **mode**: `single` (`available_bandwidth`, one query per request) vs
//!   `batch` (`admit_batch`, a whole arrival sequence answered by one warm
//!   session sweep);
//! - **phase**: `cold` (per-request distinct demands — every request pays
//!   an LP solve; the compiled instance warms once per universe) vs `warm`
//!   (the identical request sequence replayed over the *same keep-alive
//!   connections* the cold phase established — result-cache hits, no
//!   reconnect storm).
//!
//! Each cell reports sustained request and query throughput plus
//! p50/p99/p999 latency. Responses are checked for `"status": "ok"` so a
//! server shedding load cannot fake a win; overload rejections count as
//! errors and fail the run.
//!
//! `--smoke` runs a 64-connection grid and writes nothing — the CI hook
//! that keeps both servers serving this workload. The full run asserts the
//! headline result: the reactor sustains higher warm single-query
//! throughput than thread-per-connection at 1k+ connections.

#![forbid(unsafe_code)]

use awb_reactor::{Interest, Poller};
use awb_service::{serve, serve_reactor, EngineConfig, ReactorServerConfig, ServerConfig};
use serde::Serialize;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Inline 3-node relay topology: two conflicting 54 Mbps hops, so link 0
/// has 27 Mbps available. Small on purpose — the bench measures the
/// serving stack, not the LP.
const TOPOLOGY: &str = r#""topology": {"nodes": [[0,0],[50,0],[100,0]], "links": [[0,1],[1,2]], "alone_rates": [[54],[54]], "conflicts": [[0,1]]}"#;

/// Arrivals per `admit_batch` request.
const BATCH_ARRIVALS: usize = 8;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Single,
    Batch,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Cold,
    Warm,
}

struct GridConfig {
    connections: usize,
    /// Requests each connection issues per phase.
    iterations: usize,
}

const FULL: GridConfig = GridConfig {
    connections: 1056,
    iterations: 4,
};
const SMOKE: GridConfig = GridConfig {
    connections: 64,
    iterations: 2,
};

#[derive(Serialize)]
struct Row {
    server: &'static str,
    mode: &'static str,
    phase: &'static str,
    connections: usize,
    requests: usize,
    /// Admission queries answered (requests × arrivals for batch mode).
    queries: usize,
    elapsed_ms: f64,
    /// Requests per second.
    qps: f64,
    /// Queries per second (differs from qps in batch mode).
    queries_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    errors: usize,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    command: &'static str,
    connections: usize,
    iterations: usize,
    batch_arrivals: usize,
    rows: Vec<Row>,
}

/// The request line connection `conn` sends on iteration `iter`.
///
/// Cold-phase demands differ per (connection, iteration) so every request
/// misses the result cache and pays a real solve; warm-phase demands
/// repeat iteration 0's value, so replays hit. Demands stay far below the
/// 27 Mbps capacity — admission outcomes are not the point here.
fn request_line(mode: Mode, phase: Phase, conn: usize, iter: usize) -> String {
    let salt = match phase {
        Phase::Cold => (conn * 7919 + iter * 104_729) % 100_000,
        Phase::Warm => conn * 7919 % 100_000,
    };
    let demand = 0.001 + salt as f64 * 1e-8;
    let id = conn * 1_000_000 + iter;
    match mode {
        Mode::Single => format!(
            r#"{{"query": "available_bandwidth", "id": {id}, {TOPOLOGY}, "path": [0,1], "background": [{{"path": [1], "demand_mbps": {demand}}}]}}"#
        ),
        Mode::Batch => {
            let arrivals: Vec<String> = (0..BATCH_ARRIVALS)
                .map(|a| {
                    format!(
                        r#"{{"path": [0,1], "demand_mbps": {}}}"#,
                        demand + a as f64 * 1e-9
                    )
                })
                .collect();
            format!(
                r#"{{"query": "admit_batch", "id": {id}, {TOPOLOGY}, "arrivals": [{}]}}"#,
                arrivals.join(", ")
            )
        }
    }
}

/// One load-generator connection: a nonblocking socket keeping exactly one
/// request in flight. Connections persist across phases (keep-alive): the
/// warm phase replays over the sockets the cold phase drove.
struct ClientConn {
    stream: TcpStream,
    out: Vec<u8>,
    out_pos: usize,
    inbuf: Vec<u8>,
    /// Next iteration to send (the current one is `iter - 1`).
    iter: usize,
    sent_at: Instant,
    interest: Interest,
    /// Finished the current phase's iterations.
    done: bool,
    /// Closed or errored; unusable for later phases.
    dead: bool,
}

/// Connects the load generator's keep-alive connection set and registers
/// every socket with `poller` (token = connection index).
fn connect_all(poller: &Poller, addr: SocketAddr, n: usize) -> io::Result<Vec<ClientConn>> {
    let mut conns: Vec<ClientConn> = Vec::with_capacity(n);
    for c in 0..n {
        // Loopback connects complete at SYN-ACK; retry briefly if the
        // listen backlog is momentarily full.
        let stream = {
            let mut attempt = 0;
            loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) if attempt < 50 => {
                        attempt += 1;
                        let _ = e;
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => return Err(e),
                }
            }
        };
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        poller.register(stream.as_raw_fd(), c as u64, Interest::BOTH)?;
        conns.push(ClientConn {
            stream,
            out: Vec::new(),
            out_pos: 0,
            inbuf: Vec::new(),
            iter: 0,
            sent_at: Instant::now(),
            interest: Interest::BOTH,
            done: true,
            dead: false,
        });
    }
    Ok(conns)
}

/// Runs one (server, mode, phase) cell over the established keep-alive
/// connections, returning per-request latencies (µs) plus the error count
/// and wall time. Reusing connections across phases means a warm phase
/// measures result-cache replay, not a reconnect storm.
fn drive(
    poller: &Poller,
    conns: &mut [ClientConn],
    grid: &GridConfig,
    mode: Mode,
    phase: Phase,
) -> io::Result<(Vec<u64>, usize, Duration)> {
    let expected = grid.connections * grid.iterations;
    let mut latencies: Vec<u64> = Vec::with_capacity(expected);
    let mut errors = 0usize;
    let mut open = 0usize;
    let started = Instant::now();
    for (c, conn) in conns.iter_mut().enumerate() {
        if conn.dead {
            // A connection lost in an earlier phase cannot answer; its
            // share of this phase counts as errors.
            errors += grid.iterations;
            continue;
        }
        let mut out = request_line(mode, phase, c, 0).into_bytes();
        out.push(b'\n');
        conn.out = out;
        conn.out_pos = 0;
        conn.inbuf.clear();
        conn.iter = 1;
        conn.done = false;
        conn.sent_at = started;
        if conn.interest != Interest::BOTH {
            poller.modify(conn.stream.as_raw_fd(), c as u64, Interest::BOTH)?;
            conn.interest = Interest::BOTH;
        }
        open += 1;
    }
    let mut events = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    while open > 0 {
        events.clear();
        poller.wait(&mut events, Some(Duration::from_millis(100)))?;
        for ev in events.iter().copied() {
            let Some(conn) = conns.get_mut(ev.token as usize) else {
                continue;
            };
            if conn.done {
                continue;
            }
            if ev.writable {
                while conn.out_pos < conn.out.len() {
                    match conn.stream.write(&conn.out[conn.out_pos..]) {
                        Ok(n) => conn.out_pos += n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => return Err(e),
                    }
                }
            }
            if ev.readable || ev.hangup || ev.error {
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            // Premature close counts every outstanding
                            // request as an error.
                            errors += 1 + grid.iterations.saturating_sub(conn.iter);
                            conn.done = true;
                            conn.dead = true;
                            open -= 1;
                            break;
                        }
                        Ok(n) => {
                            conn.inbuf.extend_from_slice(&chunk[..n]);
                            while let Some(pos) = conn.inbuf.iter().position(|&b| b == b'\n') {
                                let line: Vec<u8> = conn.inbuf.drain(..=pos).collect();
                                let us =
                                    conn.sent_at.elapsed().as_micros().min(u64::MAX as u128) as u64;
                                latencies.push(us);
                                if !line_is_ok(&line) {
                                    errors += 1;
                                }
                                if conn.iter < grid.iterations {
                                    let next =
                                        request_line(mode, phase, ev.token as usize, conn.iter);
                                    conn.iter += 1;
                                    conn.out = next.into_bytes();
                                    conn.out.push(b'\n');
                                    conn.out_pos = 0;
                                    conn.sent_at = Instant::now();
                                    // Try to send inline; fall back to
                                    // waiting for writability.
                                    while conn.out_pos < conn.out.len() {
                                        match conn.stream.write(&conn.out[conn.out_pos..]) {
                                            Ok(n) => conn.out_pos += n,
                                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                                break
                                            }
                                            Err(e) => return Err(e),
                                        }
                                    }
                                } else if !conn.done {
                                    conn.done = true;
                                    open -= 1;
                                }
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => {
                            errors += 1 + grid.iterations.saturating_sub(conn.iter);
                            conn.done = true;
                            conn.dead = true;
                            open -= 1;
                            break;
                        }
                    }
                    if conn.done {
                        break;
                    }
                }
            }
            if conn.dead {
                // Only dead sockets leave the poller; completed ones stay
                // registered for the next phase (keep-alive).
                let _ = poller.deregister(conn.stream.as_raw_fd());
                continue;
            }
            // Only ask for writability while bytes are pending; otherwise
            // a level-triggered poller would spin on writable sockets.
            let want = Interest {
                readable: true,
                writable: conn.out_pos < conn.out.len(),
            };
            if want != conn.interest {
                poller.modify(conn.stream.as_raw_fd(), ev.token, want)?;
                conn.interest = want;
            }
        }
    }
    let elapsed = started.elapsed();
    Ok((latencies, errors, elapsed))
}

/// Whether a response line reports success.
fn line_is_ok(line: &[u8]) -> bool {
    // Cheap check: every engine response carries `"status": "ok"` or
    // `"status": "error"`; full JSON parsing would dominate the client.
    let text = String::from_utf8_lossy(line);
    text.contains(r#""status": "ok""#) || text.contains(r#""status":"ok""#)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn run_cell(
    poller: &Poller,
    conns: &mut [ClientConn],
    grid: &GridConfig,
    server: &'static str,
    mode: Mode,
    phase: Phase,
) -> Row {
    let (mut latencies, errors, elapsed) =
        drive(poller, conns, grid, mode, phase).expect("load generator I/O failed");
    latencies.sort_unstable();
    let requests = latencies.len();
    let per_request = match mode {
        Mode::Single => 1,
        Mode::Batch => BATCH_ARRIVALS,
    };
    let queries = requests * per_request;
    let secs = elapsed.as_secs_f64().max(1e-9);
    Row {
        server,
        mode: match mode {
            Mode::Single => "single",
            Mode::Batch => "batch",
        },
        phase: match phase {
            Phase::Cold => "cold",
            Phase::Warm => "warm",
        },
        connections: grid.connections,
        requests,
        queries,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        qps: requests as f64 / secs,
        queries_per_sec: queries as f64 / secs,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        errors,
    }
}

/// Runs the cold and warm phases for one mode against a running server.
/// Both phases share one keep-alive connection set: the warm phase replays
/// over the very sockets the cold phase drove, so its numbers measure
/// result-cache replay rather than a fresh connect storm.
fn run_mode(addr: SocketAddr, grid: &GridConfig, server: &'static str, mode: Mode) -> Vec<Row> {
    let poller = Poller::new().expect("load generator poller");
    let mut conns =
        connect_all(&poller, addr, grid.connections).expect("load generator connect failed");
    vec![
        run_cell(&poller, &mut conns, grid, server, mode, Phase::Cold),
        run_cell(&poller, &mut conns, grid, server, mode, Phase::Warm),
    ]
}

fn run_reactor(grid: &GridConfig) -> Vec<Row> {
    let server = serve_reactor(ReactorServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_capacity: grid.connections + 64,
        max_connections: grid.connections + 64,
        engine: EngineConfig::default(),
        ..ReactorServerConfig::default()
    })
    .expect("reactor server failed to start");
    let addr = server.local_addr();
    let mut rows = run_mode(addr, grid, "reactor", Mode::Single);
    rows.extend(run_mode(addr, grid, "reactor", Mode::Batch));
    server.shutdown();
    rows
}

fn run_blocking(grid: &GridConfig) -> Vec<Row> {
    // One worker per connection: the classic thread-per-connection shape
    // the reactor replaces.
    let server = serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: grid.connections,
        queue_capacity: grid.connections + 64,
        engine: EngineConfig::default(),
        ..ServerConfig::default()
    })
    .expect("blocking server failed to start");
    let addr = server.local_addr();
    let mut rows = run_mode(addr, grid, "blocking", Mode::Single);
    rows.extend(run_mode(addr, grid, "blocking", Mode::Batch));
    server.shutdown();
    rows
}

fn print_row(r: &Row) {
    println!(
        "{:>8} {:>6} {:>4}: {:>6} conns, {:>6} reqs in {:>9.1} ms — {:>9.0} req/s \
         ({:>9.0} queries/s), p50 {:>7} µs, p99 {:>7} µs, p999 {:>7} µs, errors {}",
        r.server,
        r.mode,
        r.phase,
        r.connections,
        r.requests,
        r.elapsed_ms,
        r.qps,
        r.queries_per_sec,
        r.p50_us,
        r.p99_us,
        r.p999_us,
        r.errors,
    );
}

fn find_qps(rows: &[Row], server: &str, mode: &str, phase: &str) -> f64 {
    rows.iter()
        .find(|r| r.server == server && r.mode == mode && r.phase == phase)
        .map_or(0.0, |r| r.qps)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let grid = if smoke { SMOKE } else { FULL };

    let mut rows = run_reactor(&grid);
    rows.extend(run_blocking(&grid));
    for r in &rows {
        print_row(r);
    }
    let total_errors: usize = rows.iter().map(|r| r.errors).sum();
    assert_eq!(total_errors, 0, "load run saw error responses");
    let expected = grid.connections * grid.iterations;
    for r in &rows {
        assert_eq!(
            r.requests, expected,
            "{}/{}/{} dropped requests",
            r.server, r.mode, r.phase
        );
    }

    if smoke {
        println!(
            "service_load_bench smoke ok: {} connections × {} iterations on both servers, 0 errors",
            grid.connections, grid.iterations
        );
        return;
    }

    // The headline acceptance bar: at 1k+ connections the reactor
    // sustains more warm single-query throughput than one thread per
    // connection.
    let reactor_qps = find_qps(&rows, "reactor", "single", "warm");
    let blocking_qps = find_qps(&rows, "blocking", "single", "warm");
    assert!(
        reactor_qps > blocking_qps,
        "reactor ({reactor_qps:.0} req/s) did not beat thread-per-connection \
         ({blocking_qps:.0} req/s) at {} connections",
        grid.connections
    );
    println!(
        "reactor sustains {:.2}x thread-per-connection warm single-query throughput \
         at {} connections",
        reactor_qps / blocking_qps,
        grid.connections
    );

    let report = Report {
        bench: "service_load",
        command: "cargo run --release -p awb-bench --bin service_load_bench",
        connections: grid.connections,
        iterations: grid.iterations,
        batch_arrivals: BATCH_ARRIVALS,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_service_load.json", json + "\n").expect("write BENCH_service_load.json");
    println!("wrote BENCH_service_load.json");
}
