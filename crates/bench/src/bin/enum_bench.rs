//! `enum_bench` — machine-readable comparison of the set-enumeration
//! engines, written to `BENCH_enumeration.json` at the repo root.
//!
//! For each topology size it times `maximal_independent_sets_with` and
//! unpruned `enumerate_admissible` under every engine (generic backtracker,
//! compiled bitset at 1/2/4 threads) on the same seeded random declarative
//! model, reporting ns/op (minimum over iterations) and the compiled-vs-
//! generic speedup. Engine outputs are asserted byte-identical before any
//! timing is trusted.
//!
//! `--smoke` runs a single small topology with loose thresholds and writes
//! nothing — the CI hook that keeps the engines honest without paying for
//! the full sweep.

#![forbid(unsafe_code)]

use awb_bench::topo::random_declarative;
use awb_sets::{
    enumerate_admissible, maximal_independent_sets_with, EngineKind, EnumerationOptions,
};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

const SEED: u64 = 7;

const ENGINES: [(&str, EngineKind); 4] = [
    ("generic", EngineKind::Generic),
    ("compiled1", EngineKind::Compiled(1)),
    ("compiled2", EngineKind::Compiled(2)),
    ("compiled4", EngineKind::Compiled(4)),
];

#[derive(Serialize)]
struct SizeResult {
    links: usize,
    maximal_sets: usize,
    admissible_sets: usize,
    /// ns/op of `maximal_independent_sets_with`, per engine.
    maximal_ns: BTreeMap<String, u64>,
    /// ns/op of unpruned `enumerate_admissible`, per engine.
    enumerate_ns: BTreeMap<String, u64>,
    /// maximal: generic ns / compiled1 ns.
    maximal_speedup: f64,
    /// enumerate: generic ns / compiled1 ns.
    enumerate_speedup: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    command: &'static str,
    seed: u64,
    /// Cores available to the run — parallel scaling cannot exceed this.
    cpu_cores: usize,
    results: Vec<SizeResult>,
}

/// ns/op: warm up once, then iterate for at least ~60 ms (at least 3 times)
/// and take the minimum — the usual floor-of-noise estimator.
fn time_ns(mut f: impl FnMut()) -> u64 {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_nanos().max(1);
    let iters = (60_000_000 / once).clamp(3, 10_000) as usize;
    let mut best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    u64::try_from(best).unwrap_or(u64::MAX)
}

fn unpruned(engine: EngineKind) -> EnumerationOptions {
    EnumerationOptions {
        prune_dominated: false,
        engine,
        ..EnumerationOptions::default()
    }
}

fn run_size(links: usize, seed: u64) -> SizeResult {
    let (model, universe) = random_declarative(links, seed);

    // Correctness gate: every engine must agree with the generic reference
    // byte-for-byte before its timings mean anything.
    let max_ref = maximal_independent_sets_with(&model, &universe, EngineKind::Generic);
    let enum_ref = enumerate_admissible(&model, &universe, &unpruned(EngineKind::Generic));
    for (name, kind) in ENGINES {
        assert_eq!(
            maximal_independent_sets_with(&model, &universe, kind),
            max_ref,
            "maximal mismatch for engine {name}"
        );
        assert_eq!(
            enumerate_admissible(&model, &universe, &unpruned(kind)),
            enum_ref,
            "enumerate mismatch for engine {name}"
        );
    }

    let mut maximal_ns = BTreeMap::new();
    let mut enumerate_ns = BTreeMap::new();
    for (name, kind) in ENGINES {
        maximal_ns.insert(
            name.to_string(),
            time_ns(|| {
                maximal_independent_sets_with(&model, &universe, kind);
            }),
        );
        enumerate_ns.insert(
            name.to_string(),
            time_ns(|| {
                enumerate_admissible(&model, &universe, &unpruned(kind));
            }),
        );
    }
    let ratio = |m: &BTreeMap<String, u64>| m["generic"] as f64 / m["compiled1"] as f64;
    SizeResult {
        links,
        maximal_sets: max_ref.len(),
        admissible_sets: enum_ref.len(),
        maximal_speedup: ratio(&maximal_ns),
        enumerate_speedup: ratio(&enumerate_ns),
        maximal_ns,
        enumerate_ns,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cpu_cores = std::thread::available_parallelism().map_or(1, usize::from);

    if smoke {
        let result = run_size(8, SEED);
        assert!(
            result.maximal_speedup >= 1.5,
            "compiled maximal-set engine is not ahead of generic: {:.2}x",
            result.maximal_speedup
        );
        println!(
            "enum_bench smoke ok: 8 links, {} maximal sets, compiled {:.1}x generic",
            result.maximal_sets, result.maximal_speedup
        );
        return;
    }

    let report = Report {
        bench: "enumeration-engines",
        command: "cargo run --release -p awb-bench --bin enum_bench",
        seed: SEED,
        cpu_cores,
        results: [8, 10, 12, 14].map(|n| run_size(n, SEED)).into(),
    };
    for r in &report.results {
        println!(
            "{:>2} links: maximal {:>6} sets, generic {:>12} ns, compiled {:>12} ns ({:.1}x); \
             enumerate {:>6} sets ({:.1}x)",
            r.links,
            r.maximal_sets,
            r.maximal_ns["generic"],
            r.maximal_ns["compiled1"],
            r.maximal_speedup,
            r.admissible_sets,
            r.enumerate_speedup,
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_enumeration.json", json + "\n").expect("write BENCH_enumeration.json");
    println!("wrote BENCH_enumeration.json ({} cores)", cpu_cores);
}
