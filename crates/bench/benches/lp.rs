//! Simplex solver benchmarks, including the pricing-rule ablation
//! (`lp_pricing` in DESIGN.md).

use awb_lp::{Direction, Pricing, Problem, Relation, SolverOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A dense random feasible LP with `m` constraints over `n` variables.
fn random_lp(n: usize, m: usize, seed: u64) -> Problem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = Problem::new(Direction::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| p.add_var(format!("x{i}"), rng.gen_range(0.0..5.0)))
        .collect();
    for _ in 0..m {
        let terms: Vec<_> = vars.iter().map(|&v| (v, rng.gen_range(0.0..3.0))).collect();
        p.add_constraint(&terms, Relation::Le, rng.gen_range(5.0..50.0))
            .expect("fresh variables");
    }
    for &v in &vars {
        p.bound_var(v, 100.0).expect("fresh variables");
    }
    p
}

fn bench_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_solve");
    for &(n, m) in &[(10usize, 20usize), (30, 60), (60, 120)] {
        let p = random_lp(n, m, 42);
        g.bench_with_input(BenchmarkId::new("dense", format!("{n}x{m}")), &p, |b, p| {
            b.iter(|| p.solve().expect("random LPs are feasible"))
        });
    }
    g.finish();
}

fn bench_pricing(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_pricing");
    let p = random_lp(30, 60, 7);
    for (label, pricing) in [("auto", Pricing::Auto), ("bland", Pricing::Bland)] {
        g.bench_with_input(BenchmarkId::new(label, "30x60"), &p, |b, p| {
            b.iter(|| {
                p.solve_with(SolverOptions {
                    pricing,
                    ..SolverOptions::default()
                })
                .expect("random LPs are feasible")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sizes, bench_pricing);
criterion_main!(benches);
