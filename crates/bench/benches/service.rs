//! Service-layer benchmarks: cold (empty caches) versus warm (result cache
//! hit) query latency through `awb_service::Engine`, on the paper's
//! Scenario II chain and a 20-node random SINR topology with background
//! flows.
//!
//! Besides the criterion groups, an explicit speedup report is printed —
//! the service's reason to exist is that a warm query skips independent-set
//! enumeration and the LP entirely, which should be well over an order of
//! magnitude.

use awb_estimate::IdleMap;
use awb_net::Path;
use awb_phy::Phy;
use awb_routing::{shortest_path, RoutingMetric};
use awb_service::{Engine, EngineConfig, Request, TopologySpec};
use awb_workloads::{connected_pairs, RandomTopology, RandomTopologyConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// Scenario II (§2.4): the 5-node multirate chain whose Eq. 6 optimum is
/// 16.2 Mbps, as an inline declarative spec.
fn scenario2_line() -> String {
    r#"{"query": "available_bandwidth", "topology": {
        "nodes": [[0,0],[50,0],[100,0],[150,0],[200,0]],
        "links": [[0,1],[1,2],[2,3],[3,4]],
        "alone_rates": [[54,36],[54,36],[54,36],[54,36]],
        "conflicts": [[0,1],[0,2],[1,2],[1,3],[2,3]],
        "rate_conflicts": [[0,54,3,54],[0,54,3,36]]
    }, "path": [0,1,2,3]}"#
        .replace('\n', " ")
}

/// A 20-node random topology under the paper's radio model: a 2–4 hop
/// query path plus two background flows, so the link universe (and hence
/// the enumeration the cache saves) is realistic.
fn random20_line() -> String {
    let rt = RandomTopology::generate_with_phy(
        RandomTopologyConfig {
            num_nodes: 20,
            ..RandomTopologyConfig::default()
        },
        Phy::paper_default(),
    );
    let model = rt.model();
    let pairs = connected_pairs(model, 3, 2..=4, 5);
    let idle = IdleMap::from_ratios(vec![1.0; model.topology().num_nodes()]);
    let paths: Vec<Path> = pairs
        .iter()
        .map(|&(src, dst)| {
            shortest_path(model, &idle, RoutingMetric::HopCount, src, dst)
                .expect("connected_pairs guarantees a route")
        })
        .collect();
    let indices = |p: &Path| {
        p.links()
            .iter()
            .map(|l| l.index().to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let spec = TopologySpec::sinr_for(model.topology()).to_value();
    format!(
        r#"{{"query": "available_bandwidth", "topology": {spec}, "background": [{{"path": [{}], "demand_mbps": 0.5}}, {{"path": [{}], "demand_mbps": 0.5}}], "path": [{}]}}"#,
        indices(&paths[1]),
        indices(&paths[2]),
        indices(&paths[0]),
    )
}

fn answer(engine: &Engine, request: &Request) -> f64 {
    let (value, _) = engine.handle(request, None).expect("query succeeds");
    value
        .get("bandwidth_mbps")
        .and_then(|v| v.as_f64())
        .expect("available_bandwidth result")
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("service");
    for (name, line) in [
        ("scenario2", scenario2_line()),
        ("random20", random20_line()),
    ] {
        let request = Request::parse(&line).expect("bench request parses");
        g.bench_function(format!("{name}/cold"), |b| {
            b.iter(|| {
                let engine = Engine::new(EngineConfig::default());
                answer(&engine, &request)
            })
        });
        let engine = Engine::new(EngineConfig::default());
        let first = answer(&engine, &request);
        g.bench_function(format!("{name}/warm"), |b| {
            b.iter(|| answer(&engine, &request))
        });
        assert_eq!(
            first.to_bits(),
            answer(&engine, &request).to_bits(),
            "cached answer must be identical"
        );
    }
    g.finish();
}

/// Not a criterion group: measures the warm/cold ratio directly and prints
/// it, since the ratio (not either absolute number) is the service's
/// acceptance criterion.
fn report_speedup() {
    for (name, line) in [
        ("scenario2", scenario2_line()),
        ("random20", random20_line()),
    ] {
        let request = Request::parse(&line).expect("bench request parses");
        let cold_iters = 20;
        let started = Instant::now();
        for _ in 0..cold_iters {
            let engine = Engine::new(EngineConfig::default());
            criterion::black_box(answer(&engine, &request));
        }
        let cold = started.elapsed().as_secs_f64() / f64::from(cold_iters);

        let engine = Engine::new(EngineConfig::default());
        answer(&engine, &request); // warm up
        let warm_iters = 2_000;
        let started = Instant::now();
        for _ in 0..warm_iters {
            criterion::black_box(answer(&engine, &request));
        }
        let warm = started.elapsed().as_secs_f64() / f64::from(warm_iters);

        println!(
            "service/{name}: cold {:.1} us, warm {:.1} us -> {:.1}x speedup",
            cold * 1e6,
            warm * 1e6,
            cold / warm
        );
    }
}

fn bench_speedup(_c: &mut Criterion) {
    report_speedup();
}

criterion_group!(benches, bench_cold_vs_warm, bench_speedup);
criterion_main!(benches);
