//! End-to-end timings of the figure-regeneration drivers (E1–E5) — the cost
//! of reproducing each of the paper's artefacts.

use awb_bench::experiments::{fig2_paths, fig3, fig4, scenario1_sweep, scenario2_report};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("scenario1_sweep_5pts", |b| {
        b.iter(|| scenario1_sweep(&[0.1, 0.2, 0.3, 0.4, 0.5], 5_000))
    });
    g.bench_function("scenario2_report", |b| b.iter(scenario2_report));
    g.bench_function("fig2_paths", |b| b.iter(fig2_paths));
    g.bench_function("fig3", |b| b.iter(fig3));
    g.bench_function("fig4", |b| b.iter(fig4));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
