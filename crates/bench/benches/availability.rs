//! Available-bandwidth LP benchmarks: chain-length scaling of the Eq. 6
//! solve, the Eq. 9 upper-bound LP, and the CSMA simulator's slot rate.

use awb_core::bounds::{clique_upper_bound, UpperBoundOptions};
use awb_core::{available_bandwidth, AvailableBandwidthOptions};
use awb_phy::Phy;
use awb_sim::{SimConfig, Simulator};
use awb_workloads::{chain_model, ScenarioTwo};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_eq6_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("eq6_chain_scaling");
    for &hops in &[2usize, 4, 6, 8] {
        let (model, path) = chain_model(hops, 70.0, Phy::paper_default());
        g.bench_with_input(BenchmarkId::from_parameter(hops), &hops, |b, _| {
            b.iter(|| {
                available_bandwidth(&model, &[], &path, &AvailableBandwidthOptions::default())
                    .expect("chains are feasible")
            })
        });
    }
    g.finish();
}

fn bench_eq9_scenario2(c: &mut Criterion) {
    let s = ScenarioTwo::new();
    c.bench_function("eq9_scenario2", |b| {
        b.iter(|| {
            clique_upper_bound(s.model(), &[], &s.path(), &UpperBoundOptions::default())
                .expect("scenario II fits the cap")
        })
    });
}

fn bench_sim_slots(c: &mut Criterion) {
    let (model, path) = chain_model(4, 70.0, Phy::paper_default());
    c.bench_function("csma_10k_slots_4hop", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                &model,
                SimConfig {
                    slots: 10_000,
                    ..SimConfig::default()
                },
            );
            sim.add_flow(path.clone(), None);
            sim.run(&model)
        })
    });
}

criterion_group!(
    benches,
    bench_eq6_chain,
    bench_eq9_scenario2,
    bench_sim_slots
);
criterion_main!(benches);
