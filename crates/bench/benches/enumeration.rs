//! Independent-set enumeration benchmarks: chain-length scaling, the
//! dominance-pruning ablation (`enum_pruning` in DESIGN.md), the
//! pairwise-vs-joint admissibility ablation (`admissibility`), and the
//! compiled-vs-generic engine comparison (`enum_engines`; the `enum_bench`
//! binary emits the same comparison as machine-readable JSON).

use awb_bench::topo::random_declarative;
use awb_net::{DeclarativeModel, LinkRateModel, SinrModel};
use awb_phy::Phy;
use awb_sets::{
    enumerate_admissible, maximal_independent_sets_with, EngineKind, EnumerationOptions,
};
use awb_workloads::chain_model;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A declarative model carrying exactly the pairwise conflicts of `m` at
/// max-alone rates — the "protocol model" approximation of the SINR model.
fn pairwise_projection(m: &SinrModel) -> DeclarativeModel {
    let t = m.topology().clone();
    let links: Vec<_> = t.links().map(|l| l.id()).collect();
    let mut b = DeclarativeModel::builder(t);
    for &l in &links {
        b = b.alone_rates(l, &m.alone_rates(l));
    }
    for (i, &a) in links.iter().enumerate() {
        for &bl in &links[i + 1..] {
            for ra in m.alone_rates(a) {
                for rb in m.alone_rates(bl) {
                    if m.conflicts((a, ra), (bl, rb)) {
                        b = b.conflict_at(a, ra, bl, rb);
                    }
                }
            }
        }
    }
    b.build()
}

fn bench_chain_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("enum_chain_scaling");
    for &hops in &[4usize, 6, 8, 10] {
        let (model, path) = chain_model(hops, 70.0, Phy::paper_default());
        let links = path.links().to_vec();
        g.bench_with_input(BenchmarkId::from_parameter(hops), &hops, |b, _| {
            b.iter(|| enumerate_admissible(&model, &links, &EnumerationOptions::default()))
        });
    }
    g.finish();
}

fn bench_pruning_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("enum_pruning");
    let (model, path) = chain_model(8, 70.0, Phy::paper_default());
    let links = path.links().to_vec();
    for (label, prune) in [("pruned", true), ("unpruned", false)] {
        g.bench_with_input(BenchmarkId::new(label, 8), &prune, |b, &prune| {
            b.iter(|| {
                enumerate_admissible(
                    &model,
                    &links,
                    &EnumerationOptions {
                        prune_dominated: prune,
                        ..EnumerationOptions::default()
                    },
                )
            })
        });
    }
    g.finish();
}

fn bench_admissibility_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("admissibility");
    let (sinr, path) = chain_model(8, 70.0, Phy::paper_default());
    let links = path.links().to_vec();
    let pairwise = pairwise_projection(&sinr);
    g.bench_function("joint_sinr", |b| {
        b.iter(|| enumerate_admissible(&sinr, &links, &EnumerationOptions::default()))
    });
    g.bench_function("pairwise_declarative", |b| {
        b.iter(|| enumerate_admissible(&pairwise, &links, &EnumerationOptions::default()))
    });
    g.finish();
}

fn bench_engine_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("enum_engines");
    let (model, links) = random_declarative(10, 7);
    let engines = [
        ("generic", EngineKind::Generic),
        ("compiled", EngineKind::Compiled(1)),
        ("compiled2", EngineKind::Compiled(2)),
        ("compiled4", EngineKind::Compiled(4)),
    ];
    for (label, kind) in engines {
        g.bench_with_input(BenchmarkId::new("enumerate", label), &kind, |b, &kind| {
            b.iter(|| {
                enumerate_admissible(
                    &model,
                    &links,
                    &EnumerationOptions {
                        prune_dominated: false,
                        engine: kind,
                        ..EnumerationOptions::default()
                    },
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("maximal", label), &kind, |b, &kind| {
            b.iter(|| maximal_independent_sets_with(&model, &links, kind))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_chain_scaling,
    bench_pruning_ablation,
    bench_admissibility_ablation,
    bench_engine_comparison
);
criterion_main!(benches);
