//! End-to-end reproduction of the paper's Scenario I (§1, Fig. 1): channel
//! idle time underestimates available bandwidth because an optimal scheduler
//! can overlap background transmissions that carrier sensing observes as
//! disjoint.

use awb::core::{available_bandwidth, AvailableBandwidthOptions};
use awb::estimate::{Estimator, Hop, IdleMap};
use awb::sim::{SimConfig, Simulator};
use awb::workloads::ScenarioOne;

#[test]
fn optimal_scheduling_gives_one_minus_lambda() {
    let s = ScenarioOne::new();
    let r = s.rate().as_mbps();
    for lambda in [0.0, 0.1, 0.25, 0.4, 0.5] {
        let out = available_bandwidth(
            s.model(),
            &s.background(lambda),
            &s.new_path(),
            &AvailableBandwidthOptions::default(),
        )
        .unwrap();
        let expected = (1.0 - lambda) * r;
        assert!(
            (out.bandwidth_mbps() - expected).abs() < 1e-6,
            "λ={lambda}: got {}, want {expected}",
            out.bandwidth_mbps()
        );
        // The witness overlaps L1 and L2 to free time for L3.
        assert!(out.schedule().is_valid(s.model()));
    }
}

#[test]
fn idle_time_estimation_sees_only_one_minus_two_lambda() {
    let s = ScenarioOne::new();
    let m = s.model();
    let r = s.rate().as_mbps();
    for lambda in [0.1, 0.2, 0.3, 0.4] {
        // Carrier sensing against the contention MAC's non-overlapping
        // background schedule.
        let idle = IdleMap::from_schedule(m, &s.naive_background_schedule(lambda));
        let hops = Hop::for_path(m, &idle, &s.new_path()).unwrap();
        let estimate = Estimator::BottleneckNode.estimate(m, &hops);
        let expected = (1.0 - 2.0 * lambda) * r;
        assert!(
            (estimate - expected).abs() < 1e-6,
            "λ={lambda}: got {estimate}, want {expected}"
        );
        // The same estimator against the *optimal* (overlapped) background
        // recovers the true value — the error is in the observation, not
        // the estimator.
        let idle_opt = IdleMap::from_schedule(m, &s.optimal_background_schedule(lambda));
        let hops_opt = Hop::for_path(m, &idle_opt, &s.new_path()).unwrap();
        let est_opt = Estimator::BottleneckNode.estimate(m, &hops_opt);
        assert!((est_opt - (1.0 - lambda) * r).abs() < 1e-6);
    }
}

#[test]
fn gap_between_truth_and_idle_estimate_grows_with_lambda() {
    let s = ScenarioOne::new();
    let m = s.model();
    let mut last_gap = -1.0;
    for lambda in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let truth = available_bandwidth(
            m,
            &s.background(lambda),
            &s.new_path(),
            &AvailableBandwidthOptions::default(),
        )
        .unwrap()
        .bandwidth_mbps();
        let idle = IdleMap::from_schedule(m, &s.naive_background_schedule(lambda));
        let hops = Hop::for_path(m, &idle, &s.new_path()).unwrap();
        let estimate = Estimator::BottleneckNode.estimate(m, &hops);
        let gap = truth - estimate;
        assert!(gap >= last_gap - 1e-9, "gap must grow with λ");
        last_gap = gap;
    }
    // At λ = 0.5 the idle estimate admits nothing while half the channel is
    // actually available.
    assert!((last_gap - 27.0).abs() < 1e-6);
}

#[test]
fn csma_simulation_confirms_the_underestimate() {
    // Behavioural check: random-phase background on L1/L2 leaves the L3
    // observer measurably *less* idle time than the optimal 1 − λ, and the
    // measured idle feeds an estimate below the LP truth.
    let s = ScenarioOne::new();
    let m = s.model();
    let lambda = 0.35;
    let mut sim = Simulator::new(
        m,
        SimConfig {
            slots: 60_000,
            ..SimConfig::default()
        },
    );
    for flow in s.background(lambda) {
        sim.add_flow(flow.path().clone(), Some(flow.demand_mbps()));
    }
    let report = sim.run(m);
    let idle = IdleMap::from_ratios(report.node_idle_ratio.clone());
    let l3 = s.links()[2];
    let measured = idle.link(m, l3);
    let optimal_idle = 1.0 - lambda;
    assert!(
        measured < optimal_idle - 0.05,
        "measured idle {measured} should undershoot optimal {optimal_idle}"
    );
    // And the resulting bandwidth estimate undershoots the LP truth.
    let hops = Hop::for_path(m, &idle, &s.new_path()).unwrap();
    let estimate = Estimator::BottleneckNode.estimate(m, &hops);
    let truth = available_bandwidth(
        m,
        &s.background(lambda),
        &s.new_path(),
        &AvailableBandwidthOptions::default(),
    )
    .unwrap()
    .bandwidth_mbps();
    assert!(
        estimate < truth - 1.0,
        "estimate {estimate} should undershoot truth {truth}"
    );
}

#[test]
fn analytic_and_simulated_idle_ratios_agree_for_isolated_links() {
    // For L1's own transmitter (which hears only itself), both the analytic
    // map and the simulator should measure idle ≈ 1 − λ.
    let s = ScenarioOne::new();
    let m = s.model();
    let lambda = 0.3;
    let mut sim = Simulator::new(
        m,
        SimConfig {
            slots: 60_000,
            ..SimConfig::default()
        },
    );
    for flow in s.background(lambda) {
        sim.add_flow(flow.path().clone(), Some(flow.demand_mbps()));
    }
    let report = sim.run(m);
    let analytic = IdleMap::from_schedule(m, &s.naive_background_schedule(lambda));
    let tx1 = m.topology().link(s.links()[0]).unwrap().tx();
    let simulated = report.node_idle_ratio[tx1.index()];
    let expected = analytic.node(tx1);
    assert!(
        (simulated - expected).abs() < 0.05,
        "simulated {simulated} vs analytic {expected}"
    );
}
