//! Cross-layer consistency checks: the CSMA simulator against the LP
//! oracle, the Eq. 9 upper bound against Eq. 6 on geometric chains, and
//! decomposition against the monolithic solve.

use awb::core::bounds::{clique_upper_bound, UpperBoundOptions};
use awb::core::{available_bandwidth, AvailableBandwidthOptions};
use awb::phy::Phy;
use awb::sim::{SimConfig, Simulator};
use awb::workloads::chain_model;

#[test]
fn csma_throughput_never_beats_the_oracle() {
    // The LP assumes globally optimal scheduling; no contention MAC can do
    // better. Check across chain lengths and hop distances.
    for (hops, dist) in [(1usize, 50.0), (2, 50.0), (3, 70.0), (4, 100.0)] {
        let (model, path) = chain_model(hops, dist, Phy::paper_default());
        let capacity =
            available_bandwidth(&model, &[], &path, &AvailableBandwidthOptions::default())
                .unwrap()
                .bandwidth_mbps();
        let mut sim = Simulator::new(
            &model,
            SimConfig {
                slots: 30_000,
                ..SimConfig::default()
            },
        );
        let f = sim.add_flow(path.clone(), None);
        let got = sim.run(&model).flow_throughput_mbps[f];
        assert!(
            got <= capacity + 0.5,
            "{hops} hops @ {dist} m: sim {got} > capacity {capacity}"
        );
        // And the MAC should not be pathologically bad either (> 55% of
        // capacity on these simple chains).
        assert!(
            got >= 0.55 * capacity,
            "{hops} hops @ {dist} m: sim {got} far below capacity {capacity}"
        );
    }
}

#[test]
fn eq9_dominates_eq6_on_geometric_chains() {
    for hops in [2usize, 3, 4] {
        let (model, path) = chain_model(hops, 70.0, Phy::paper_default());
        let exact = available_bandwidth(&model, &[], &path, &AvailableBandwidthOptions::default())
            .unwrap()
            .bandwidth_mbps();
        let upper = clique_upper_bound(
            &model,
            &[],
            &path,
            &UpperBoundOptions {
                max_rate_vectors: 4096,
            },
        )
        .unwrap();
        assert!(
            upper + 1e-6 >= exact,
            "{hops} hops: Eq. 9 {upper} < Eq. 6 {exact}"
        );
    }
}

#[test]
fn rate_limited_flows_meet_their_demand_under_capacity() {
    // A 2-hop relay has ~13 Mbps capacity at 70 m hops (36 Mbps links);
    // a 5 Mbps flow must be delivered nearly losslessly.
    let (model, path) = chain_model(2, 70.0, Phy::paper_default());
    let capacity = available_bandwidth(&model, &[], &path, &AvailableBandwidthOptions::default())
        .unwrap()
        .bandwidth_mbps();
    assert!(capacity > 10.0);
    let mut sim = Simulator::new(
        &model,
        SimConfig {
            slots: 60_000,
            ..SimConfig::default()
        },
    );
    let f = sim.add_flow(path, Some(5.0));
    let got = sim.run(&model).flow_throughput_mbps[f];
    assert!((got - 5.0).abs() < 0.5, "delivered {got} of 5 Mbps");
}

#[test]
fn decomposition_is_close_on_geometric_instances() {
    // Two chains far apart: decomposition treats them independently. For the
    // SINR model the residual cross-chain interference is negligible at
    // 10 km, so both solves must agree tightly.
    let mut t = awb::net::Topology::new();
    let na: Vec<_> = (0..3).map(|i| t.add_node(i as f64 * 70.0, 0.0)).collect();
    let nb: Vec<_> = (0..3)
        .map(|i| t.add_node(i as f64 * 70.0, 10_000.0))
        .collect();
    let la: Vec<_> = na
        .windows(2)
        .map(|w| t.add_link(w[0], w[1]).unwrap())
        .collect();
    let lb: Vec<_> = nb
        .windows(2)
        .map(|w| t.add_link(w[0], w[1]).unwrap())
        .collect();
    let model = awb::net::SinrModel::new(t, Phy::paper_default());
    let path = awb::net::Path::new(model.topology(), la).unwrap();
    let bg_path = awb::net::Path::new(model.topology(), lb).unwrap();
    let background = vec![awb::core::Flow::new(bg_path, 5.0).unwrap()];
    let mono = available_bandwidth(
        &model,
        &background,
        &path,
        &AvailableBandwidthOptions::default(),
    )
    .unwrap()
    .bandwidth_mbps();
    let deco = available_bandwidth(
        &model,
        &background,
        &path,
        &AvailableBandwidthOptions {
            decompose: true,
            ..Default::default()
        },
    )
    .unwrap()
    .bandwidth_mbps();
    assert!(
        (mono - deco).abs() < 1e-3,
        "monolithic {mono} vs decomposed {deco}"
    );
}
