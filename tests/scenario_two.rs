//! End-to-end reproduction of the paper's §5.1 Scenario II analysis: the
//! four-link chain where the clique constraint becomes invalid and link
//! adaptation lifts the end-to-end throughput to 16.2 Mbps.

use awb::core::bounds::{
    clique_time_share, clique_upper_bound, equal_throughput_clique_bound, UpperBoundOptions,
};
use awb::core::{available_bandwidth, AvailableBandwidthOptions};
use awb::phy::Rate;
use awb::sets::{is_clique, is_maximal_clique, is_maximal_clique_with_max_rates, RatedSet};
use awb::workloads::ScenarioTwo;

fn r(m: f64) -> Rate {
    Rate::from_mbps(m)
}

#[test]
fn optimal_end_to_end_throughput_is_16_2() {
    let s = ScenarioTwo::new();
    let out = available_bandwidth(
        s.model(),
        &[],
        &s.path(),
        &AvailableBandwidthOptions::default(),
    )
    .unwrap();
    assert!(
        (out.bandwidth_mbps() - ScenarioTwo::OPTIMAL_THROUGHPUT_MBPS).abs() < 1e-6,
        "expected 16.2, got {}",
        out.bandwidth_mbps()
    );
    // The witness schedule is admissible and delivers 16.2 on every hop.
    let schedule = out.schedule();
    assert!(schedule.is_valid(s.model()));
    for l in s.links() {
        assert!(
            schedule.link_throughput(l) >= 16.2 - 1e-6,
            "hop {l} under-served: {}",
            schedule.link_throughput(l)
        );
    }
    assert!(schedule.total_share() <= 1.0 + 1e-9);
}

#[test]
fn fixed_rate_clique_bounds_match_the_paper() {
    let s = ScenarioTwo::new();
    let [l1, l2, l3, l4] = s.links();
    // R1 = (54, 54, 54, 54): tightest maximal clique is all four links
    // (L1@54 conflicts with L4), bound 54/4 = 13.5.
    let all54: Vec<_> = [l1, l2, l3, l4].into_iter().map(|l| (l, r(54.0))).collect();
    let b1 = equal_throughput_clique_bound(s.model(), &all54).unwrap();
    assert!(
        (b1 - ScenarioTwo::ALL_54_CLIQUE_BOUND_MBPS).abs() < 1e-9,
        "got {b1}"
    );
    // R2 = (36, 54, 54, 54): tightest clique is {L1@36, L2@54, L3@54},
    // bound 1/(1/36 + 2/54) = 108/7 ≈ 15.43.
    let l1_36 = vec![(l1, r(36.0)), (l2, r(54.0)), (l3, r(54.0)), (l4, r(54.0))];
    let b2 = equal_throughput_clique_bound(s.model(), &l1_36).unwrap();
    assert!(
        (b2 - ScenarioTwo::L1_36_CLIQUE_BOUND_MBPS).abs() < 1e-9,
        "got {b2}"
    );
    // Both fixed-rate bounds are below the adaptive optimum: the clique
    // constraint cannot upper-bound multirate scheduling.
    assert!(b1 < ScenarioTwo::OPTIMAL_THROUGHPUT_MBPS);
    assert!(b2 < ScenarioTwo::OPTIMAL_THROUGHPUT_MBPS);
}

#[test]
fn clique_time_shares_exceed_one_at_the_optimum() {
    // The paper's §5.1 violation check: with y_i = f = 16.2 on every link,
    // C1 (all links at 54) has time share 16.2 · 4/54 = 1.2 > 1 and
    // C2 = {L1@36, L2@54, L3@54} has 16.2 · (1/36 + 2/54) = 1.05 > 1.
    let s = ScenarioTwo::new();
    let [l1, l2, l3, l4] = s.links();
    let f = ScenarioTwo::OPTIMAL_THROUGHPUT_MBPS;
    let c1: RatedSet = [l1, l2, l3, l4].into_iter().map(|l| (l, r(54.0))).collect();
    let t1 = clique_time_share(&c1, |_| f);
    assert!((t1 - 1.2).abs() < 1e-9, "got {t1}");
    let c2: RatedSet = vec![(l1, r(36.0)), (l2, r(54.0)), (l3, r(54.0))]
        .into_iter()
        .collect();
    let t2 = clique_time_share(&c2, |_| f);
    assert!((t2 - 1.05).abs() < 1e-9, "got {t2}");
}

#[test]
fn paper_clique_taxonomy_examples() {
    // §3.1's worked examples of the clique definitions.
    let s = ScenarioTwo::new();
    let m = s.model();
    let [l1, l2, l3, l4] = s.links();
    let links = s.links();

    // {(L1,54), (L2,54), (L3,54)} is a clique but not a maximal clique
    // (L4 can join: L1@54 conflicts with L4).
    let c: RatedSet = vec![(l1, r(54.0)), (l2, r(54.0)), (l3, r(54.0))]
        .into_iter()
        .collect();
    assert!(is_clique(m, &c));
    assert!(!is_maximal_clique(m, &c, &links));

    // {(L1,36), (L2,36), (L3,36)} is a maximal clique (L4 cannot join:
    // L1@36 does not conflict with L4) but not one with maximum rates.
    let c: RatedSet = vec![(l1, r(36.0)), (l2, r(36.0)), (l3, r(36.0))]
        .into_iter()
        .collect();
    assert!(is_maximal_clique(m, &c, &links));
    assert!(!is_maximal_clique_with_max_rates(m, &c, &links));

    // Both {(L1,54),(L2,54),(L3,54),(L4,54)} and {(L1,36),(L2,54),(L3,54)}
    // are maximal cliques with maximum rates.
    let c: RatedSet = vec![(l1, r(54.0)), (l2, r(54.0)), (l3, r(54.0)), (l4, r(54.0))]
        .into_iter()
        .collect();
    assert!(is_maximal_clique_with_max_rates(m, &c, &links));
    let c: RatedSet = vec![(l1, r(36.0)), (l2, r(54.0)), (l3, r(54.0))]
        .into_iter()
        .collect();
    assert!(is_maximal_clique_with_max_rates(m, &c, &links));
}

#[test]
fn optimal_schedule_uses_link_adaptation_on_l1() {
    // Achieving 16.2 requires L1 to transmit at different rates at
    // different times (54 alone, 36 alongside L4).
    let s = ScenarioTwo::new();
    let out = available_bandwidth(
        s.model(),
        &[],
        &s.path(),
        &AvailableBandwidthOptions::default(),
    )
    .unwrap();
    let l1 = s.links()[0];
    let rates_used: Vec<f64> = out
        .schedule()
        .entries()
        .iter()
        .filter_map(|(set, share)| {
            (*share > 1e-9)
                .then(|| set.rate_of(l1).map(Rate::as_mbps))
                .flatten()
        })
        .collect();
    assert!(
        rates_used.contains(&54.0) && rates_used.contains(&36.0),
        "L1 must alternate rates, used {rates_used:?}"
    );
}

#[test]
fn eq9_upper_bound_dominates_the_adaptive_optimum() {
    let s = ScenarioTwo::new();
    let upper =
        clique_upper_bound(s.model(), &[], &s.path(), &UpperBoundOptions::default()).unwrap();
    assert!(
        upper + 1e-6 >= ScenarioTwo::OPTIMAL_THROUGHPUT_MBPS,
        "Eq. 9 bound {upper} below the optimum"
    );
    // (That the naive fixed-rate bounds sit *below* the feasible 16.2 is
    // asserted in `fixed_rate_clique_bounds_match_the_paper`.)
}
