//! Property tests for the compiled-query [`Session`] API: a warm session
//! answering an arbitrary (shuffled) query sequence must be bit-for-bit
//! identical to fresh one-shot solves, on declarative and SINR models and
//! under both solvers.
//!
//! This is the contract that makes the session a pure caching layer: the
//! compiled instance holds only query-independent state, so neither the
//! order queries arrive in nor how many came before can change an answer.

use awb::core::{available_bandwidth, AvailableBandwidthOptions, Flow, Session, SolverKind};
use awb::net::{DeclarativeModel, LinkId, LinkRateModel, Path, SinrModel, Topology};
use awb::phy::{Phy, Rate};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One query in a sweep, as fractions of the chain: a sub-chain new path
/// and one background flow on another sub-chain.
#[derive(Debug, Clone)]
struct QuerySpec {
    start: usize,
    len: usize,
    bg_start: usize,
    bg_len: usize,
    demand_mbps: f64,
}

#[derive(Debug, Clone)]
struct Sweep {
    links: usize,
    /// Per-link rate-menu code (0..4).
    rates: Vec<u8>,
    /// Bitmask of extra non-adjacent conflict pairs.
    extra_conflicts: u32,
    queries: Vec<QuerySpec>,
    /// Rotation applied to the query order (the "shuffle").
    rotation: usize,
}

fn sweep() -> impl Strategy<Value = Sweep> {
    (3usize..=6)
        .prop_flat_map(|links| {
            (
                Just(links),
                proptest::collection::vec(0u8..4, links),
                0u32..=u32::MAX,
                proptest::collection::vec(
                    (0usize..64, 1usize..=2, 0usize..64, 1usize..=2, 0.05f64..0.4),
                    2..=6,
                ),
                0usize..8,
            )
        })
        .prop_map(|(links, rates, extra_conflicts, raw, rotation)| Sweep {
            links,
            rates,
            extra_conflicts,
            queries: raw
                .into_iter()
                .map(|(start, len, bg_start, bg_len, demand_mbps)| QuerySpec {
                    start,
                    len,
                    bg_start,
                    bg_len,
                    demand_mbps,
                })
                .collect(),
            rotation,
        })
}

fn rate_menu(code: u8) -> Vec<Rate> {
    let mbps: &[f64] = match code {
        0 => &[54.0],
        1 => &[54.0, 36.0],
        2 => &[36.0],
        _ => &[12.0],
    };
    mbps.iter().map(|&m| Rate::from_mbps(m)).collect()
}

/// A straight chain topology with `n` links.
fn chain(n: usize) -> (Topology, Vec<LinkId>) {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..=n).map(|i| t.add_node(i as f64 * 60.0, 0.0)).collect();
    let links: Vec<_> = nodes
        .windows(2)
        .map(|w| t.add_link(w[0], w[1]).expect("fresh nodes"))
        .collect();
    (t, links)
}

/// Declarative chain: adjacent links always conflict; `extra` adds random
/// non-adjacent conflict pairs.
fn declarative(s: &Sweep) -> (DeclarativeModel, Vec<LinkId>) {
    let (t, links) = chain(s.links);
    let mut builder = DeclarativeModel::builder(t);
    for (i, &l) in links.iter().enumerate() {
        builder = builder.alone_rates(l, &rate_menu(s.rates[i]));
    }
    for w in links.windows(2) {
        builder = builder.conflict_all(w[0], w[1]);
    }
    let mut bit = 0;
    for i in 0..links.len() {
        for j in (i + 2)..links.len() {
            if s.extra_conflicts & (1 << (bit % 32)) != 0 {
                builder = builder.conflict_all(links[i], links[j]);
            }
            bit += 1;
        }
    }
    (builder.build(), links)
}

/// SINR chain under the paper's PHY: interference falls out of geometry.
fn sinr(s: &Sweep) -> (SinrModel, Vec<LinkId>) {
    let (t, links) = chain(s.links);
    (SinrModel::new(t, Phy::paper_default()), links)
}

/// Materializes one query against the model's chain.
fn build_query<M: LinkRateModel>(model: &M, links: &[LinkId], q: &QuerySpec) -> (Path, Vec<Flow>) {
    let t = model.topology();
    let n = links.len();
    let len = q.len.min(n);
    let start = q.start % (n - len + 1);
    let path = Path::new(t, links[start..start + len].to_vec()).expect("chain sub-path");
    let bg_len = q.bg_len.min(n);
    let bg_start = q.bg_start % (n - bg_len + 1);
    let bg_path =
        Path::new(t, links[bg_start..bg_start + bg_len].to_vec()).expect("chain sub-path");
    let background = vec![Flow::new(bg_path, q.demand_mbps).expect("demand is valid")];
    (path, background)
}

/// The property: every warm answer matches a fresh one-shot solve bitwise,
/// under the given solver, in rotated order — and asking again later (after
/// other universes were compiled in between) returns the same bits.
fn check_model<M: LinkRateModel>(
    model: &M,
    links: &[LinkId],
    s: &Sweep,
    solver: SolverKind,
) -> Result<(), TestCaseError> {
    let options = AvailableBandwidthOptions {
        solver,
        ..AvailableBandwidthOptions::default()
    };
    let mut session = Session::new(model, options);
    let n = s.queries.len();
    let mut warm_bits: Vec<Option<u64>> = vec![None; n];
    for step in 0..n {
        let i = (step + s.rotation) % n;
        let (path, background) = build_query(model, links, &s.queries[i]);
        let warm = session.query(&background, &path);
        let cold = available_bandwidth(model, &background, &path, &options);
        match (warm, cold) {
            (Ok(w), Ok(c)) => {
                prop_assert_eq!(
                    w.bandwidth_mbps().to_bits(),
                    c.bandwidth_mbps().to_bits(),
                    "warm session diverges from one-shot solve (query {})",
                    i
                );
                warm_bits[i] = Some(w.bandwidth_mbps().to_bits());
            }
            (Err(w), Err(c)) => prop_assert_eq!(w, c),
            (w, c) => prop_assert!(
                false,
                "warm/cold outcomes disagree on query {}: {:?} vs {:?}",
                i,
                w.map(|o| o.bandwidth_mbps()),
                c.map(|o| o.bandwidth_mbps())
            ),
        }
    }
    // Replay in natural order on the same (now fully warm) session: the
    // answers must not have drifted with session history.
    for (i, expected) in warm_bits.iter().enumerate() {
        let (path, background) = build_query(model, links, &s.queries[i]);
        if let Ok(w) = session.query(&background, &path) {
            prop_assert_eq!(
                Some(w.bandwidth_mbps().to_bits()),
                *expected,
                "answer drifted on replay (query {})",
                i
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn warm_sessions_match_one_shot_solves_declarative(s in sweep()) {
        let (model, links) = declarative(&s);
        check_model(&model, &links, &s, SolverKind::FullEnumeration)?;
        check_model(&model, &links, &s, SolverKind::ColumnGeneration)?;
    }

    #[test]
    fn warm_sessions_match_one_shot_solves_sinr(s in sweep()) {
        let (model, links) = sinr(&s);
        check_model(&model, &links, &s, SolverKind::FullEnumeration)?;
        check_model(&model, &links, &s, SolverKind::ColumnGeneration)?;
    }
}
