//! Property tests over random *geometric* (SINR-model) topologies: the
//! declarative-model properties of the per-crate suites, re-verified under
//! additive interference, plus the TDMA-vs-LP sandwich.

use awb::core::bounds::{clique_upper_bound, UpperBoundOptions};
use awb::core::{available_bandwidth, AvailableBandwidthOptions, CoreError};
use awb::net::{LinkRateModel, Path, SinrModel, Topology};
use awb::phy::Phy;
use awb::sets::{tdma_throughput, RatedSet};
use proptest::prelude::*;

/// A random geometric chain: hops of varying lengths placed along a bent
/// line, so consecutive and non-consecutive interference both occur.
#[derive(Debug, Clone)]
struct GeoChain {
    hop_lengths: Vec<f64>,
    bend_deg: f64,
}

fn geo_chain() -> impl Strategy<Value = GeoChain> {
    (2usize..=5)
        .prop_flat_map(|hops| {
            (
                proptest::collection::vec(40.0f64..150.0, hops),
                -30.0f64..30.0,
            )
        })
        .prop_map(|(hop_lengths, bend_deg)| GeoChain {
            hop_lengths,
            bend_deg,
        })
}

fn build(g: &GeoChain) -> (SinrModel, Path) {
    let mut t = Topology::new();
    let (mut x, mut y) = (0.0f64, 0.0f64);
    let mut heading = 0.0f64;
    let mut nodes = vec![t.add_node(x, y)];
    for &len in &g.hop_lengths {
        heading += g.bend_deg.to_radians();
        x += len * heading.cos();
        y += len * heading.sin();
        nodes.push(t.add_node(x, y));
    }
    let links: Vec<_> = nodes
        .windows(2)
        .map(|w| t.add_link(w[0], w[1]).expect("fresh nodes"))
        .collect();
    let model = SinrModel::new(t, Phy::paper_default());
    let path = Path::new(model.topology(), links).expect("chain is a path");
    (model, path)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn witness_schedule_is_valid_under_sinr(g in geo_chain()) {
        let (model, path) = build(&g);
        let out = available_bandwidth(
            &model, &[], &path, &AvailableBandwidthOptions::default())
            .expect("no background: always feasible");
        prop_assert!(out.bandwidth_mbps() >= 0.0);
        let s = out.schedule();
        prop_assert!(s.is_valid(&model), "inadmissible witness set");
        prop_assert!(s.total_share() <= 1.0 + 1e-7);
        for &l in path.links() {
            prop_assert!(s.link_throughput(l) + 1e-6 >= out.bandwidth_mbps());
        }
    }

    #[test]
    fn eq9_dominates_eq6_under_sinr(g in geo_chain()) {
        let (model, path) = build(&g);
        let exact = available_bandwidth(
            &model, &[], &path, &AvailableBandwidthOptions::default())
            .expect("feasible")
            .bandwidth_mbps();
        match clique_upper_bound(
            &model, &[], &path,
            &UpperBoundOptions { max_rate_vectors: 2048 },
        ) {
            Ok(upper) => prop_assert!(
                upper + 1e-6 >= exact,
                "Eq. 9 {upper} < Eq. 6 {exact}"
            ),
            Err(CoreError::TooManyRateVectors { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    #[test]
    fn tdma_coloring_never_beats_the_lp(g in geo_chain()) {
        // A TDMA schedule at max-alone rates is feasible, so its worst link
        // throughput lower-bounds the LP optimum of the equal-throughput
        // flow... when the coloring respects joint (not just pairwise)
        // admissibility. Pairwise coloring can be slightly optimistic under
        // additive SINR, so compare against the pairwise-sound statement:
        // min TDMA throughput <= LP + tolerance fails only through joint
        // effects; assert with a 5% slack and at least report monotonicity.
        let (model, path) = build(&g);
        let assignment: RatedSet = path
            .links()
            .iter()
            .filter_map(|&l| model.max_alone_rate(l).map(|r| (l, r)))
            .collect();
        prop_assume!(assignment.len() == path.len());
        let (_k, tp) = tdma_throughput(&model, &assignment);
        let tdma_min = tp.iter().copied().fold(f64::INFINITY, f64::min);
        let lp = available_bandwidth(
            &model, &[], &path, &AvailableBandwidthOptions::default())
            .expect("feasible")
            .bandwidth_mbps();
        prop_assert!(
            tdma_min <= lp * 1.05 + 1e-6,
            "TDMA lower bound {tdma_min} implausibly above LP {lp}"
        );
    }

    #[test]
    fn decomposed_sinr_solve_is_at_least_the_monolithic_one(g in geo_chain()) {
        // Decomposition drops cross-component interference residue, so it
        // can only relax the problem.
        let (model, path) = build(&g);
        let mono = available_bandwidth(
            &model, &[], &path, &AvailableBandwidthOptions::default())
            .expect("feasible")
            .bandwidth_mbps();
        let deco = available_bandwidth(
            &model, &[], &path,
            &AvailableBandwidthOptions { decompose: true, ..Default::default() })
            .expect("feasible")
            .bandwidth_mbps();
        prop_assert!(deco + 1e-6 >= mono, "decomposed {deco} < monolithic {mono}");
    }
}
