//! Smoke test of the §5.2 random-topology pipeline (Fig. 2/3/4): generates
//! the paper's 30-node field, admits 2 Mbps flows one by one under each
//! routing metric, and checks shape properties of the results.

use awb::routing::{admit_sequentially, AdmissionConfig, RoutingMetric};
use awb::workloads::{connected_pairs, RandomTopology, RandomTopologyConfig};

#[test]
fn admission_pipeline_runs_and_orders_metrics() {
    let rt = RandomTopology::generate(RandomTopologyConfig::default());
    let model = rt.model();
    let pairs = connected_pairs(model, 8, 2..=4, 21);
    let config = AdmissionConfig::default();

    let mut admitted_counts = Vec::new();
    for metric in RoutingMetric::ALL {
        let out = admit_sequentially(model, &pairs, metric, &config).unwrap();
        assert!(!out.is_empty());
        // Every admitted flow got at least the demand.
        for o in &out {
            if o.admitted {
                assert!(o.available_mbps + 1e-9 >= config.demand_mbps);
                assert!(o.path.is_some());
            }
        }
        admitted_counts.push((metric, out.iter().filter(|o| o.admitted).count()));
    }
    // average-e2eD should admit at least as many flows as hop count
    // (the paper's headline ordering; exact indices depend on the draw).
    let count_of = |m: RoutingMetric| {
        admitted_counts
            .iter()
            .find(|(x, _)| *x == m)
            .map(|(_, c)| *c)
            .unwrap()
    };
    assert!(
        count_of(RoutingMetric::AverageE2eDelay) >= count_of(RoutingMetric::HopCount),
        "average-e2eD admitted fewer flows than hop count: {admitted_counts:?}"
    );
}
