#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> awb-audit --deny (panic-freedom / float-eq / determinism / lint-header)"
cargo run --release -q -p awb-audit -- --deny

echo "==> cargo test --features debug-invariants (runtime LP/colgen guards)"
cargo test -q -p awb-lp --features debug-invariants
cargo test -q -p awb-core --features debug-invariants --lib

echo "==> enum_bench --smoke (engine equivalence + speedup floor)"
cargo run --release -q -p awb-bench --bin enum_bench -- --smoke

echo "==> colgen_bench --smoke (solver equivalence + speedup floor)"
cargo run --release -q -p awb-bench --bin colgen_bench -- --smoke

echo "==> colgen_bench --frontier-smoke (64-link clustered solve under wall-clock budget)"
cargo run --release -q -p awb-bench --bin colgen_bench -- --frontier-smoke

echo "==> session_bench --smoke (warm-session bit-identity + speedup floor)"
cargo run --release -q -p awb-bench --bin session_bench -- --smoke

echo "==> service_load_bench --smoke (reactor + blocking servers under load)"
cargo run --release -q -p awb-bench --bin service_load_bench -- --smoke

echo "==> estimators_bench --smoke (kernel bit-identity + speedup floor + campaign determinism)"
cargo run --release -q -p awb-bench --bin estimators_bench -- --smoke

echo "CI green."
