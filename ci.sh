#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> awb-audit --deny (R1-R4 lexical lints + R5 unsafe-confinement / R6 lock-order / R7 hot-path-alloc / R8 reactor-blocking)"
# Ratchet mode: audit-baseline.json records the accepted hot-path allocation
# sites on the delta-recompile path (compiling a dirty component allocates by
# design); the gate fails only on findings NOT in the baseline. Refresh with
#   cargo run --release -q -p awb-audit -- --write-baseline audit-baseline.json
cargo run --release -q -p awb-audit -- --baseline audit-baseline.json --deny

# Best-effort ThreadSanitizer leg over the concurrency-heavy crates. TSan
# needs a nightly toolchain (-Zsanitizer) plus the matching rust-src; when
# either is missing the leg is skipped with a visible notice so the rest of
# the gate still runs everywhere.
echo "==> ThreadSanitizer (reactor + service test suites, best effort)"
if rustup toolchain list 2>/dev/null | grep -q nightly \
    && rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src (installed)"; then
    RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Z build-std -q -p awb-reactor -p awb-service \
        --target "$(rustc -vV | sed -n 's/^host: //p')"
else
    echo "    SKIPPED: no nightly toolchain with rust-src; install via" \
         "'rustup toolchain install nightly --component rust-src' to enable"
fi

echo "==> cargo test --features debug-invariants (runtime LP/colgen guards)"
cargo test -q -p awb-lp --features debug-invariants
cargo test -q -p awb-core --features debug-invariants --lib

echo "==> enum_bench --smoke (engine equivalence + speedup floor)"
cargo run --release -q -p awb-bench --bin enum_bench -- --smoke

echo "==> colgen_bench --smoke (solver equivalence + speedup floor)"
cargo run --release -q -p awb-bench --bin colgen_bench -- --smoke

echo "==> colgen_bench --frontier-smoke (64-link clustered solve under wall-clock budget)"
cargo run --release -q -p awb-bench --bin colgen_bench -- --frontier-smoke

echo "==> session_bench --smoke (warm-session bit-identity + speedup floor)"
cargo run --release -q -p awb-bench --bin session_bench -- --smoke

echo "==> service_load_bench --smoke (reactor + blocking servers under load)"
cargo run --release -q -p awb-bench --bin service_load_bench -- --smoke

echo "==> estimators_bench --smoke (kernel bit-identity + speedup floor + campaign determinism)"
cargo run --release -q -p awb-bench --bin estimators_bench -- --smoke

echo "==> mobility_bench --smoke (incremental recompile beats from-scratch, answers bit-identical)"
cargo run --release -q -p awb-bench --bin mobility_bench -- --smoke

echo "CI green."
